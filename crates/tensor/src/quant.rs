//! Symmetric int8 quantisation, matching the 8-bit deployments of RITNet and
//! FBNet-C100 in the paper (Tables 2 and 3 report "(8-bit)" rows).
//!
//! Quantisation is *symmetric per-tensor*: `q = clamp(round(x / scale))`
//! with `scale = max|x| / 127`. Convolutions accumulate in `i32` exactly as
//! the accelerator's MAC lanes would, then rescale to `f32`.
//!
//! Two operator families live here:
//!
//! * f32-out ops ([`qconv2d`], [`qlinear`]) — integer accumulation with a
//!   single rescale back to f32, used at network *boundaries* and for
//!   fake-quantisation accuracy experiments;
//! * int8-out ops ([`qconv2d_requant`], [`qglobal_avg_pool`],
//!   [`requantize`]) — the deployed inference chain, where every layer
//!   consumes and produces int8 activations and the rescale between layers
//!   uses a *calibrated* output scale. These are what the int8
//!   `QuantizedGazeNet` backend in `eyecod-models` runs.
//!
//! The conv/linear inner loops dispatch to the AVX2 i8×i8→i32 kernels in
//! [`crate::simd`] when the host supports them (kill switch:
//! `EYECOD_NO_SIMD=1`). Integer accumulation is exactly associative, so the
//! SIMD paths are bit-identical to the scalar kernels, which stay available
//! as the retained differential baselines ([`qconv2d_reference`],
//! [`qconv2d_requant_reference`], [`qlinear_reference`]).
//!
//! Two invariants protect the integer arithmetic (see [`crate::simd`] for
//! the full analysis): every stored code lies in `[-127, 127]` (all
//! constructors clamp, −128 never occurs), and every reduction is at most
//! [`MAX_REDUCTION_DEPTH`] deep so `i32` accumulators cannot overflow.

use crate::shape::Shape;
use crate::simd;
use crate::tensor::Tensor;

pub use crate::simd::MAX_REDUCTION_DEPTH;

/// Smallest admissible activation scale. A dead (all-zero) calibration layer
/// would otherwise yield scale 0 and make every downstream division and
/// [`QTensor::quantize_with_scale`] assertion blow up; flooring keeps the
/// quantised value at exactly 0 for zero inputs while staying well inside
/// f32 normal range for every product of two scales.
pub const MIN_SCALE: f32 = 1e-12;

/// Converts an observed activation magnitude into a quantisation scale,
/// flooring degenerate (zero / denormal) observations at [`MIN_SCALE`].
///
/// # Panics
///
/// Panics if `max_abs` is negative or non-finite (a corrupted calibration
/// pass should fail loudly, not silently produce garbage scales).
pub fn calibration_scale(max_abs: f32) -> f32 {
    assert!(
        max_abs.is_finite() && max_abs >= 0.0,
        "calibration max|x| must be finite and non-negative, got {max_abs}"
    );
    (max_abs / 127.0).max(MIN_SCALE)
}

/// An int8-quantised tensor with its dequantisation scale.
#[derive(Debug, Clone, PartialEq)]
pub struct QTensor {
    shape: Shape,
    scale: f32,
    data: Vec<i8>,
}

impl QTensor {
    /// Quantises a tensor symmetrically to int8.
    ///
    /// A zero tensor gets scale 1.0 so dequantisation is well-defined.
    pub fn quantize(t: &Tensor) -> Self {
        let max = t.max_abs();
        let scale = if max == 0.0 { 1.0 } else { max / 127.0 };
        Self::quantize_with_scale(t, scale)
    }

    /// Quantises with an explicit scale (e.g. a calibration scale).
    /// Values outside the representable range saturate to ±127 rather than
    /// wrapping.
    ///
    /// # Panics
    ///
    /// Panics if `scale <= 0`.
    pub fn quantize_with_scale(t: &Tensor, scale: f32) -> Self {
        let mut out = QTensor::scratch();
        Self::quantize_with_scale_into(t, scale, &mut out);
        out
    }

    /// Reconstructs the floating-point tensor.
    pub fn dequantize(&self) -> Tensor {
        Tensor::from_vec(
            self.shape,
            self.data.iter().map(|&q| q as f32 * self.scale).collect(),
        )
    }

    /// The tensor shape.
    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// The dequantisation scale.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// The raw int8 values.
    pub fn as_i8(&self) -> &[i8] {
        &self.data
    }

    /// A 1-element placeholder for workspace buffers that will be
    /// overwritten by the `_into` operators ([`qconv2d_requant_into`],
    /// [`qglobal_avg_pool_into`], [`QTensor::quantize_with_scale_into`])
    /// before first use.
    pub fn scratch() -> Self {
        QTensor {
            shape: Shape::new(1, 1, 1, 1),
            scale: 1.0,
            data: vec![0],
        }
    }

    /// [`QTensor::quantize_with_scale`] writing into a caller-owned tensor:
    /// no allocation once `out`'s buffer has grown to the largest shape seen.
    ///
    /// # Panics
    ///
    /// Panics if `scale <= 0`.
    pub fn quantize_with_scale_into(t: &Tensor, scale: f32, out: &mut QTensor) {
        assert!(scale > 0.0, "scale must be positive");
        assert_nonzero_extents("quantize_with_scale input", t.shape());
        out.shape = t.shape();
        out.scale = scale;
        out.data.clear();
        out.data.extend(
            t.as_slice()
                .iter()
                .map(|&x| (x / scale).round().clamp(-127.0, 127.0) as i8),
        );
    }
}

/// Quantise-dequantise ("fake quantisation"): returns the f32 tensor the
/// int8 pipeline would effectively compute with. Used to evaluate 8-bit
/// accuracy in the Table 2/3 experiments without duplicating every operator.
pub fn fake_quantize(t: &Tensor) -> Tensor {
    QTensor::quantize(t).dequantize()
}

/// Rescales an int8 tensor to a new quantisation scale without a f32
/// round-trip of the whole tensor: `q' = clamp(round(q * s_old / s_new))`.
/// Needed wherever two int8 activations must share a scale (e.g. residual
/// adds, concatenation) or a layer boundary re-anchors the range.
///
/// # Panics
///
/// Panics if `out_scale <= 0`.
pub fn requantize(t: &QTensor, out_scale: f32) -> QTensor {
    assert!(out_scale > 0.0, "scale must be positive");
    let ratio = t.scale / out_scale;
    let data = t
        .data
        .iter()
        .map(|&q| (q as f32 * ratio).round().clamp(-127.0, 127.0) as i8)
        .collect();
    QTensor {
        shape: t.shape,
        scale: out_scale,
        data,
    }
}

/// Rejects degenerate shapes that bypassed [`Shape::new`]'s validation via
/// the public fields: a zero extent anywhere makes downstream arithmetic
/// divide by zero or fold `0 · inf` into NaN, so the quant ops fail loudly
/// instead.
fn assert_nonzero_extents(what: &str, s: Shape) {
    assert!(
        s.n > 0 && s.c > 0 && s.h > 0 && s.w > 0,
        "{what} must have non-zero extents, got {s}"
    );
}

/// Asserts the [`MAX_REDUCTION_DEPTH`] i32-overflow bound on a reduction of
/// `depth` i8×i8 products (see [`crate::simd`]).
fn assert_reduction_depth(what: &str, depth: usize) {
    assert!(
        depth <= MAX_REDUCTION_DEPTH,
        "{what} reduction depth {depth} exceeds MAX_REDUCTION_DEPTH \
         ({MAX_REDUCTION_DEPTH}): i32 accumulation of i8·i8 products could overflow"
    );
}

/// The half-open range of output columns `ox` whose input column
/// `ox * stride + kw - pad` is in `[0, in_w)`. Hoisting the bounds check out
/// of the streaming inner loop this way is what lets the accumulator kernels
/// below run branch-free over full output rows.
#[inline]
fn ox_span(kw: usize, pad: usize, stride: usize, in_w: usize, out_w: usize) -> (usize, usize) {
    let lo = if kw >= pad {
        0
    } else {
        (pad - kw).div_ceil(stride)
    };
    let hi = if in_w + pad > kw {
        ((in_w - 1 + pad - kw) / stride + 1).min(out_w)
    } else {
        0
    };
    (lo, hi)
}

/// Integer conv accumulation shared by [`qconv2d`] and [`qconv2d_requant`]:
/// writes the raw `i32` accumulator plane into `acc` (resized to fit, no
/// allocation once warm) and returns the output shape — exactly what the
/// accelerator's MAC lanes produce (no bias, no rescale).
///
/// The loops are blocked the same way as the f32 GEMM microkernels: the
/// weight scalar is hoisted per `(ic, kh, kw)` tap and the inner loop streams
/// along a contiguous input row into a contiguous accumulator row, with the
/// padding bounds check resolved once per tap by [`ox_span`]. Because `i32`
/// addition is exactly associative, this reordering cannot change any output
/// value.
///
/// A depth-wise convolution (`groups == C_in == C_out`) takes a dedicated
/// fast path: the single weight plane per channel is sliced once and the
/// group arithmetic disappears from the inner loops — the §5.1 observation
/// that depth-wise layers need their own treatment, in miniature.
///
/// With `use_simd` the unit-stride streaming update over a tap's dense
/// output span runs the AVX2 [`simd::qaxpy_i8`] kernel instead of the
/// scalar loop; because the i32 accumulation is exact either way, the two
/// paths are bit-identical (pinned by `tests/simd_bit_equality.rs`).
fn qconv_accumulate_into(
    input: &QTensor,
    weight: &QTensor,
    stride: usize,
    pad: usize,
    groups: usize,
    acc: &mut Vec<i32>,
    use_simd: bool,
) -> Shape {
    let ishape = input.shape;
    let wshape = weight.shape;
    assert!(groups > 0, "conv groups must be non-zero");
    assert_nonzero_extents("qconv input", ishape);
    assert_nonzero_extents("qconv weight", wshape);
    let k = wshape.h;
    let oshape = ishape.conv_output(wshape.n, k, pad, stride);
    let cin_g = ishape.c / groups;
    let cout_g = wshape.n / groups;
    assert_eq!(wshape.c, cin_g, "weight/group mismatch");
    assert_reduction_depth("qconv", cin_g * k * k);
    // the tap update `row[lo..hi] += irow[lo+kw-pad..] · wv` is a contiguous
    // widening axpy only at unit stride; larger strides stay scalar
    let axpy: fn(&mut [i32], &[i8], i32) = if use_simd && stride == 1 {
        simd::qaxpy_i8
    } else {
        simd::qaxpy_i8_scalar
    };
    acc.clear();
    acc.resize(oshape.len(), 0);
    let depthwise = groups == ishape.c && cin_g == 1 && cout_g == 1;
    if depthwise {
        for n in 0..oshape.n {
            for c in 0..oshape.c {
                let wplane = &weight.data[c * k * k..(c + 1) * k * k];
                for oy in 0..oshape.h {
                    let out_base = oshape.index(n, c, oy, 0);
                    let row = &mut acc[out_base..out_base + oshape.w];
                    for (kh, wrow) in wplane.chunks_exact(k).enumerate() {
                        let iy = (oy * stride + kh) as isize - pad as isize;
                        if iy < 0 || iy as usize >= ishape.h {
                            continue;
                        }
                        let in_base = ishape.index(n, c, iy as usize, 0);
                        let irow = &input.data[in_base..in_base + ishape.w];
                        for (kw, &wv) in wrow.iter().enumerate() {
                            let wv = wv as i32;
                            let (lo, hi) = ox_span(kw, pad, stride, ishape.w, oshape.w);
                            if lo >= hi {
                                continue;
                            }
                            if stride == 1 {
                                let s = lo + kw - pad;
                                axpy(&mut row[lo..hi], &irow[s..s + (hi - lo)], wv);
                            } else {
                                for ox in lo..hi {
                                    row[ox] += irow[ox * stride + kw - pad] as i32 * wv;
                                }
                            }
                        }
                    }
                }
            }
        }
    } else {
        for n in 0..oshape.n {
            for oc in 0..oshape.c {
                let g = oc / cout_g;
                for oy in 0..oshape.h {
                    let out_base = oshape.index(n, oc, oy, 0);
                    let row = &mut acc[out_base..out_base + oshape.w];
                    for icg in 0..cin_g {
                        let ic = g * cin_g + icg;
                        for kh in 0..k {
                            let iy = (oy * stride + kh) as isize - pad as isize;
                            if iy < 0 || iy as usize >= ishape.h {
                                continue;
                            }
                            let in_base = ishape.index(n, ic, iy as usize, 0);
                            let irow = &input.data[in_base..in_base + ishape.w];
                            let w_base = wshape.index(oc, icg, kh, 0);
                            let wrow = &weight.data[w_base..w_base + k];
                            for (kw, &wv) in wrow.iter().enumerate() {
                                let wv = wv as i32;
                                let (lo, hi) = ox_span(kw, pad, stride, ishape.w, oshape.w);
                                if lo >= hi {
                                    continue;
                                }
                                if stride == 1 {
                                    let s = lo + kw - pad;
                                    axpy(&mut row[lo..hi], &irow[s..s + (hi - lo)], wv);
                                } else {
                                    for ox in lo..hi {
                                        row[ox] += irow[ox * stride + kw - pad] as i32 * wv;
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    oshape
}

/// Allocating wrapper over [`qconv_accumulate_into`].
fn qconv_accumulate(
    input: &QTensor,
    weight: &QTensor,
    stride: usize,
    pad: usize,
    groups: usize,
    use_simd: bool,
) -> (Shape, Vec<i32>) {
    let mut acc = Vec::new();
    let oshape = qconv_accumulate_into(input, weight, stride, pad, groups, &mut acc, use_simd);
    (oshape, acc)
}

/// Int8 convolution with exact i32 accumulation, returning an f32 tensor
/// scaled by `input.scale * weight.scale`. Bias (f32) is added after
/// rescaling, as deployed int8 stacks do.
///
/// # Panics
///
/// Same geometry requirements as [`crate::ops::conv2d`].
pub fn qconv2d(
    input: &QTensor,
    weight: &QTensor,
    bias: Option<&[f32]>,
    stride: usize,
    pad: usize,
    groups: usize,
) -> Tensor {
    qconv2d_impl(
        input,
        weight,
        bias,
        stride,
        pad,
        groups,
        simd::avx2_enabled(),
    )
}

/// [`qconv2d`] forced onto the scalar inner kernels — the retained
/// differential baseline the SIMD dispatch is pinned against (bit-identical
/// by the exactness of i32 accumulation).
pub fn qconv2d_reference(
    input: &QTensor,
    weight: &QTensor,
    bias: Option<&[f32]>,
    stride: usize,
    pad: usize,
    groups: usize,
) -> Tensor {
    qconv2d_impl(input, weight, bias, stride, pad, groups, false)
}

fn qconv2d_impl(
    input: &QTensor,
    weight: &QTensor,
    bias: Option<&[f32]>,
    stride: usize,
    pad: usize,
    groups: usize,
    use_simd: bool,
) -> Tensor {
    let rescale = input.scale * weight.scale;
    let (oshape, acc) = qconv_accumulate(input, weight, stride, pad, groups, use_simd);
    let plane = oshape.h * oshape.w;
    let data = acc
        .iter()
        .enumerate()
        .map(|(i, &a)| {
            let oc = (i / plane) % oshape.c;
            a as f32 * rescale + bias.map_or(0.0, |b| b[oc])
        })
        .collect();
    Tensor::from_vec(oshape, data)
}

/// Int8 convolution whose output *stays int8*: i32 accumulation, bias add
/// and optional fused ReLU in the accumulator domain, then requantisation to
/// the calibrated `out_scale`. This is one link of the deployed inference
/// chain — activations never widen to f32 between layers.
///
/// # Panics
///
/// Same geometry requirements as [`crate::ops::conv2d`]; panics if
/// `out_scale <= 0`.
#[allow(clippy::too_many_arguments)]
pub fn qconv2d_requant(
    input: &QTensor,
    weight: &QTensor,
    bias: Option<&[f32]>,
    stride: usize,
    pad: usize,
    groups: usize,
    relu: bool,
    out_scale: f32,
) -> QTensor {
    let mut acc = Vec::new();
    let mut out = QTensor::scratch();
    qconv2d_requant_into(
        input, weight, bias, stride, pad, groups, relu, out_scale, &mut acc, &mut out,
    );
    out
}

/// [`qconv2d_requant`] writing into caller-owned buffers: `acc` holds the
/// i32 accumulator plane and `out` the requantised activations. Once both
/// have grown to the largest layer seen, a steady-state int8 forward pass
/// through this op allocates nothing.
///
/// # Panics
///
/// Same geometry requirements as [`crate::ops::conv2d`]; panics if
/// `out_scale <= 0`.
#[allow(clippy::too_many_arguments)]
pub fn qconv2d_requant_into(
    input: &QTensor,
    weight: &QTensor,
    bias: Option<&[f32]>,
    stride: usize,
    pad: usize,
    groups: usize,
    relu: bool,
    out_scale: f32,
    acc: &mut Vec<i32>,
    out: &mut QTensor,
) {
    qconv2d_requant_into_impl(
        input,
        weight,
        bias,
        stride,
        pad,
        groups,
        relu,
        out_scale,
        acc,
        out,
        simd::avx2_enabled(),
    );
}

/// [`qconv2d_requant`] forced onto the scalar inner kernels — the retained
/// differential baseline for the deployed int8 chain.
#[allow(clippy::too_many_arguments)]
pub fn qconv2d_requant_reference(
    input: &QTensor,
    weight: &QTensor,
    bias: Option<&[f32]>,
    stride: usize,
    pad: usize,
    groups: usize,
    relu: bool,
    out_scale: f32,
) -> QTensor {
    let mut acc = Vec::new();
    let mut out = QTensor::scratch();
    qconv2d_requant_into_impl(
        input, weight, bias, stride, pad, groups, relu, out_scale, &mut acc, &mut out, false,
    );
    out
}

#[allow(clippy::too_many_arguments)]
fn qconv2d_requant_into_impl(
    input: &QTensor,
    weight: &QTensor,
    bias: Option<&[f32]>,
    stride: usize,
    pad: usize,
    groups: usize,
    relu: bool,
    out_scale: f32,
    acc: &mut Vec<i32>,
    out: &mut QTensor,
    use_simd: bool,
) {
    assert!(out_scale > 0.0, "scale must be positive");
    let rescale = input.scale * weight.scale;
    let oshape = qconv_accumulate_into(input, weight, stride, pad, groups, acc, use_simd);
    let plane = oshape.h * oshape.w;
    out.shape = oshape;
    out.scale = out_scale;
    out.data.clear();
    out.data.extend(acc.iter().enumerate().map(|(i, &a)| {
        let oc = (i / plane) % oshape.c;
        let mut v = a as f32 * rescale + bias.map_or(0.0, |b| b[oc]);
        if relu {
            v = v.max(0.0);
        }
        (v / out_scale).round().clamp(-127.0, 127.0) as i8
    }));
}

/// Int8 fully connected layer: `y = x · Wᵀ + b` with i32 accumulation and a
/// single rescale to f32 — the network-boundary op that produces the gaze
/// vector (regression heads stay f32 in deployed 8-bit stacks).
///
/// * `input`: `(N, C_in, 1, 1)` (or any shape whose item length is `C_in`)
/// * `weight`: `(C_out, C_in, 1, 1)`
///
/// # Panics
///
/// Panics if the flattened input item length does not match `C_in`, or the
/// bias length does not match `C_out`.
pub fn qlinear(input: &QTensor, weight: &QTensor, bias: Option<&[f32]>) -> Tensor {
    let mut out = Tensor::zeros(Shape::vector(1, 1));
    qlinear_into(input, weight, bias, &mut out);
    out
}

/// [`qlinear`] writing into a caller-owned tensor (allocation-free once the
/// output buffer is warm).
///
/// # Panics
///
/// Same requirements as [`qlinear`].
pub fn qlinear_into(input: &QTensor, weight: &QTensor, bias: Option<&[f32]>, out: &mut Tensor) {
    qlinear_into_impl(input, weight, bias, out, simd::avx2_enabled());
}

/// [`qlinear`] forced onto the scalar dot kernel — the retained
/// differential baseline for the gaze head.
pub fn qlinear_reference(input: &QTensor, weight: &QTensor, bias: Option<&[f32]>) -> Tensor {
    let mut out = Tensor::zeros(Shape::vector(1, 1));
    qlinear_into_impl(input, weight, bias, &mut out, false);
    out
}

/// The shared `qlinear` body. With `use_simd` the inner dot products run the
/// AVX2 sign-split `maddubs` kernel ([`simd::qdot_i8`]) over a 4-output-row
/// register tile ([`simd::qdot4_i8`]) that shares every activation load;
/// i32 accumulation keeps both paths bit-identical.
fn qlinear_into_impl(
    input: &QTensor,
    weight: &QTensor,
    bias: Option<&[f32]>,
    out: &mut Tensor,
    use_simd: bool,
) {
    assert_nonzero_extents("qlinear input", input.shape);
    assert_nonzero_extents("qlinear weight", weight.shape);
    let n = input.shape.n;
    let cin = input.shape.len() / n;
    let cout = weight.shape.n;
    assert_eq!(
        weight.shape.len() / cout,
        cin,
        "qlinear weight expects {} inputs, got {cin}",
        weight.shape.len() / cout
    );
    if let Some(b) = bias {
        assert_eq!(b.len(), cout, "bias length must equal output features");
    }
    assert_reduction_depth("qlinear", cin);
    let rescale = input.scale * weight.scale;
    out.reset(Shape::vector(n, cout));
    let o = out.as_mut_slice();
    let wrow = |j: usize| &weight.data[j * cin..(j + 1) * cin];
    for i in 0..n {
        let xrow = &input.data[i * cin..(i + 1) * cin];
        let orow = &mut o[i * cout..(i + 1) * cout];
        let mut j = 0;
        if use_simd {
            while j + 4 <= cout {
                let dots = simd::qdot4_i8(xrow, [wrow(j), wrow(j + 1), wrow(j + 2), wrow(j + 3)]);
                for (t, &d) in dots.iter().enumerate() {
                    orow[j + t] = d as f32 * rescale + bias.map_or(0.0, |b| b[j + t]);
                }
                j += 4;
            }
        }
        let dot: fn(&[i8], &[i8]) -> i32 = if use_simd {
            simd::qdot_i8
        } else {
            simd::qdot_i8_scalar
        };
        for (jj, ov) in orow.iter_mut().enumerate().skip(j) {
            *ov = dot(xrow, wrow(jj)) as f32 * rescale + bias.map_or(0.0, |b| b[jj]);
        }
    }
}

/// Global average pooling over int8 activations: per-channel i32 sum,
/// rounded division by the plane size, output in the *same* scale as the
/// input (the mean of int8 values always fits back into int8).
pub fn qglobal_avg_pool(input: &QTensor) -> QTensor {
    let mut out = QTensor::scratch();
    qglobal_avg_pool_into(input, &mut out);
    out
}

/// [`qglobal_avg_pool`] writing into a caller-owned tensor (allocation-free
/// once the output buffer is warm).
///
/// # Panics
///
/// Panics on degenerate extents. A zero-area plane in particular used to
/// slip through silently: `sum · (1/0) = 0 · inf = NaN`, and `NaN as i8`
/// saturates to 0, so a malformed shape produced an all-zero pool instead
/// of an error. Also rejects planes deeper than the i32 sum can hold.
pub fn qglobal_avg_pool_into(input: &QTensor, out: &mut QTensor) {
    let s = input.shape;
    assert_nonzero_extents("qglobal_avg_pool input", s);
    let plane = s.h * s.w;
    assert!(
        plane as u64 * 127 <= i32::MAX as u64,
        "qglobal_avg_pool plane {plane} too large: i32 sum of i8 values could overflow"
    );
    let inv = 1.0 / plane as f32;
    out.shape = Shape::vector(s.n, s.c);
    out.scale = input.scale;
    out.data.clear();
    out.data.reserve(s.n * s.c);
    for n in 0..s.n {
        for c in 0..s.c {
            let base = s.index(n, c, 0, 0);
            let sum: i32 = input.data[base..base + plane]
                .iter()
                .map(|&q| q as i32)
                .sum();
            out.data
                .push((sum as f32 * inv).round().clamp(-127.0, 127.0) as i8);
        }
    }
}

/// Root-mean-square quantisation error of round-tripping `t` through int8.
pub fn quantization_rmse(t: &Tensor) -> f32 {
    let q = fake_quantize(t);
    let diff = t.sub(&q);
    (diff.mul(&diff).mean()).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn round_trip_error_is_bounded_by_half_scale() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = Tensor::from_fn(Shape::new(1, 4, 8, 8), |_, _, _, _| {
            rng.gen_range(-2.0..2.0)
        });
        let q = QTensor::quantize(&t);
        let err = t.sub(&q.dequantize()).max_abs();
        assert!(
            err <= q.scale() * 0.5 + 1e-6,
            "err {err} scale {}",
            q.scale()
        );
    }

    #[test]
    fn zero_tensor_quantizes_cleanly() {
        let t = Tensor::zeros(Shape::vector(1, 8));
        let q = QTensor::quantize(&t);
        assert_eq!(q.scale(), 1.0);
        assert_eq!(q.dequantize(), t);
    }

    #[test]
    fn extremes_map_to_full_range() {
        let t = Tensor::from_vec(Shape::vector(1, 2), vec![-5.0, 5.0]);
        let q = QTensor::quantize(&t);
        assert_eq!(q.as_i8(), &[-127, 127]);
    }

    #[test]
    fn qconv_close_to_float_conv() {
        let mut rng = StdRng::seed_from_u64(5);
        let x = Tensor::from_fn(Shape::new(1, 3, 8, 8), |_, _, _, _| {
            rng.gen_range(-1.0..1.0)
        });
        let w = Tensor::from_fn(Shape::new(4, 3, 3, 3), |_, _, _, _| {
            rng.gen_range(-0.5..0.5)
        });
        let b: Vec<f32> = (0..4).map(|_| rng.gen_range(-0.1..0.1)).collect();
        let float = ops::conv2d(&x, &w, Some(&b), 1, 1, 1);
        let q = qconv2d(
            &QTensor::quantize(&x),
            &QTensor::quantize(&w),
            Some(&b),
            1,
            1,
            1,
        );
        // relative error bounded by quantisation granularity
        let err = float.sub(&q).max_abs();
        assert!(err < 0.15, "int8 conv error too large: {err}");
    }

    #[test]
    fn qconv_depthwise_matches_shape() {
        let x = QTensor::quantize(&Tensor::ones(Shape::new(1, 4, 6, 6)));
        let w = QTensor::quantize(&Tensor::ones(Shape::new(4, 1, 3, 3)));
        let y = qconv2d(&x, &w, None, 1, 1, 4);
        assert_eq!(y.shape().dims(), (1, 4, 6, 6));
        assert!((y.at(0, 0, 1, 1) - 9.0).abs() < 0.1);
    }

    #[test]
    fn depthwise_fast_path_matches_grouped_general_path() {
        // depth-wise via the fast path must equal a 2-group convolution of
        // the same geometry evaluated channel-pair-wise through the general
        // path; easiest exact check: compare against the f32 reference conv
        // on the dequantised operands (identical integer arithmetic).
        let mut rng = StdRng::seed_from_u64(11);
        let x = Tensor::from_fn(Shape::new(2, 6, 7, 5), |_, _, _, _| {
            rng.gen_range(-1.0..1.0)
        });
        let w = Tensor::from_fn(Shape::new(6, 1, 3, 3), |_, _, _, _| {
            rng.gen_range(-1.0..1.0)
        });
        let qx = QTensor::quantize(&x);
        let qw = QTensor::quantize(&w);
        for &(stride, pad) in &[(1usize, 0usize), (1, 1), (2, 1)] {
            let fast = qconv2d(&qx, &qw, None, stride, pad, 6);
            let reference = ops::conv2d(&qx.dequantize(), &qw.dequantize(), None, stride, pad, 6);
            assert!(
                fast.sub(&reference).max_abs() < 1e-3,
                "fast path diverged at stride {stride} pad {pad}"
            );
        }
    }

    #[test]
    fn requant_conv_matches_f32_out_conv_within_one_step() {
        let mut rng = StdRng::seed_from_u64(7);
        let x = Tensor::from_fn(Shape::new(1, 3, 6, 6), |_, _, _, _| {
            rng.gen_range(-1.0..1.0)
        });
        let w = Tensor::from_fn(Shape::new(4, 3, 3, 3), |_, _, _, _| {
            rng.gen_range(-0.5..0.5)
        });
        let qx = QTensor::quantize(&x);
        let qw = QTensor::quantize(&w);
        let f32_out = qconv2d(&qx, &qw, None, 1, 1, 1);
        let out_scale = calibration_scale(f32_out.max_abs());
        let q_out = qconv2d_requant(&qx, &qw, None, 1, 1, 1, false, out_scale);
        assert_eq!(q_out.scale(), out_scale);
        let err = f32_out.sub(&q_out.dequantize()).max_abs();
        assert!(
            err <= out_scale * 0.5 + 1e-6,
            "requantised conv strayed more than half a step: {err}"
        );
    }

    #[test]
    fn requant_conv_fused_relu_clamps_negative_accumulations() {
        // an all-negative weight on an all-positive input accumulates
        // strictly negative values; fused ReLU must zero every output
        let x = QTensor::quantize(&Tensor::ones(Shape::new(1, 2, 4, 4)));
        let w = QTensor::quantize(&Tensor::from_fn(Shape::new(2, 2, 3, 3), |_, _, _, _| -0.5));
        let y = qconv2d_requant(&x, &w, None, 1, 1, 1, true, 0.1);
        assert!(y.as_i8().iter().all(|&q| q == 0), "ReLU must clamp to zero");
        let y_no_relu = qconv2d_requant(&x, &w, None, 1, 1, 1, false, 0.1);
        assert!(y_no_relu.as_i8().iter().any(|&q| q < 0));
    }

    #[test]
    fn qlinear_matches_float_linear() {
        let mut rng = StdRng::seed_from_u64(9);
        let x = Tensor::from_fn(Shape::vector(2, 16), |_, _, _, _| rng.gen_range(-1.0..1.0));
        let w = Tensor::from_fn(Shape::vector(3, 16), |_, _, _, _| rng.gen_range(-0.5..0.5));
        let b: Vec<f32> = (0..3).map(|_| rng.gen_range(-0.1..0.1)).collect();
        let float = ops::linear(&x, &w, Some(&b));
        let q = qlinear(&QTensor::quantize(&x), &QTensor::quantize(&w), Some(&b));
        assert_eq!(q.shape().dims(), (2, 3, 1, 1));
        assert!(float.sub(&q).max_abs() < 0.1);
    }

    #[test]
    fn qglobal_avg_pool_matches_float_pool_within_one_step() {
        let mut rng = StdRng::seed_from_u64(13);
        let x = Tensor::from_fn(Shape::new(2, 3, 5, 5), |_, _, _, _| {
            rng.gen_range(-1.0..1.0)
        });
        let qx = QTensor::quantize(&x);
        let pooled = qglobal_avg_pool(&qx);
        assert_eq!(pooled.shape().dims(), (2, 3, 1, 1));
        assert_eq!(pooled.scale(), qx.scale());
        let float = ops::global_avg_pool(&qx.dequantize());
        let err = float.sub(&pooled.dequantize()).max_abs();
        assert!(err <= qx.scale() * 0.5 + 1e-6, "pooled err {err}");
    }

    #[test]
    fn requantize_rescales_and_saturates() {
        let t = Tensor::from_vec(Shape::vector(1, 3), vec![-1.0, 0.5, 1.0]);
        let q = QTensor::quantize(&t); // scale 1/127
                                       // doubling the scale halves the codes
        let wider = requantize(&q, q.scale() * 2.0);
        assert_eq!(wider.as_i8(), &[-64, 32, 64]);
        // shrinking the scale 4x would need codes beyond ±127: saturate
        let narrower = requantize(&q, q.scale() / 4.0);
        assert_eq!(narrower.as_i8(), &[-127, 127, 127]);
    }

    #[test]
    fn calibration_scale_floors_dead_layers() {
        assert_eq!(calibration_scale(0.0), MIN_SCALE);
        assert!(calibration_scale(127.0) > 0.99);
        // the floored scale still quantises a zero tensor without panicking
        let z = Tensor::zeros(Shape::vector(1, 4));
        let q = QTensor::quantize_with_scale(&z, calibration_scale(0.0));
        assert!(q.as_i8().iter().all(|&v| v == 0));
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn calibration_scale_rejects_nan() {
        calibration_scale(f32::NAN);
    }

    #[test]
    fn quantization_rmse_small_for_smooth_tensors() {
        let t = Tensor::from_fn(Shape::new(1, 1, 16, 16), |_, _, h, w| {
            ((h as f32) / 16.0) - ((w as f32) / 16.0)
        });
        assert!(quantization_rmse(&t) < 0.01);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn explicit_scale_must_be_positive() {
        QTensor::quantize_with_scale(&Tensor::zeros(Shape::vector(1, 1)), 0.0);
    }

    #[test]
    fn requant_into_matches_and_reuses_buffers_across_shapes() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut acc = Vec::new();
        let mut out = QTensor::scratch();
        // grouped, strided no-pad, and depth-wise geometries through the
        // same accumulator and output buffers, twice each
        let geoms = [
            (6usize, 4usize, 9usize, 1usize, 1usize, 2usize),
            (4, 4, 6, 2, 0, 1),
            (5, 5, 7, 1, 1, 5),
        ];
        for _round in 0..2 {
            for &(ci, co, hw, stride, pad, groups) in &geoms {
                let x = Tensor::from_fn(Shape::new(2, ci, hw, hw), |_, _, _, _| {
                    rng.gen_range(-1.0..1.0)
                });
                let w = Tensor::from_fn(Shape::new(co, ci / groups, 3, 3), |_, _, _, _| {
                    rng.gen_range(-0.5..0.5)
                });
                let b: Vec<f32> = (0..co).map(|_| rng.gen_range(-0.1..0.1)).collect();
                let qx = QTensor::quantize(&x);
                let qw = QTensor::quantize(&w);
                let want = qconv2d_requant(&qx, &qw, Some(&b), stride, pad, groups, true, 0.05);
                qconv2d_requant_into(
                    &qx,
                    &qw,
                    Some(&b),
                    stride,
                    pad,
                    groups,
                    true,
                    0.05,
                    &mut acc,
                    &mut out,
                );
                assert_eq!(
                    out, want,
                    "geometry ({ci},{co},{hw},{stride},{pad},{groups})"
                );
            }
        }
    }

    #[test]
    fn pool_linear_and_quantize_into_match_allocating_paths() {
        let mut rng = StdRng::seed_from_u64(19);
        let x = Tensor::from_fn(Shape::new(2, 3, 5, 5), |_, _, _, _| {
            rng.gen_range(-1.0..1.0)
        });
        let qx = QTensor::quantize(&x);
        let mut pooled = QTensor::scratch();
        qglobal_avg_pool_into(&qx, &mut pooled);
        assert_eq!(pooled, qglobal_avg_pool(&qx));

        let w = Tensor::from_fn(Shape::vector(4, 3), |_, _, _, _| rng.gen_range(-0.5..0.5));
        let qw = QTensor::quantize(&w);
        let b: Vec<f32> = (0..4).map(|_| rng.gen_range(-0.1..0.1)).collect();
        let mut fc = Tensor::zeros(Shape::vector(1, 1));
        qlinear_into(&pooled, &qw, Some(&b), &mut fc);
        assert_eq!(fc.as_slice(), qlinear(&pooled, &qw, Some(&b)).as_slice());

        let mut q = QTensor::scratch();
        QTensor::quantize_with_scale_into(&x, 0.01, &mut q);
        assert_eq!(q, QTensor::quantize_with_scale(&x, 0.01));
    }

    /// A QTensor whose shape bypassed [`Shape::new`]'s validation through
    /// the public fields — the degenerate-shape hole the quant ops must
    /// reject loudly.
    fn degenerate_qtensor(n: usize, c: usize, h: usize, w: usize) -> QTensor {
        let shape = Shape { n, c, h, w };
        let t = Tensor::from_vec(shape, vec![0.5; n * c * h * w]);
        // bypass quantize_with_scale_into's own validation by patching the
        // shape after a legal quantisation
        let mut q = QTensor::quantize(&Tensor::from_vec(
            Shape::new(1, 1, 1, (n * c * h * w).max(1)),
            t.as_slice()
                .to_vec()
                .into_iter()
                .chain([0.0])
                .take((n * c * h * w).max(1))
                .collect(),
        ));
        q.shape = shape;
        q.data.truncate(n * c * h * w);
        q
    }

    #[test]
    #[should_panic(expected = "non-zero extents")]
    fn pool_rejects_zero_area_plane_instead_of_nan_zero() {
        // regression: h=0 made `plane == 0`, so `0 · inf = NaN`, and
        // `NaN as i8` silently became 0 — now it panics with a clear message
        let q = degenerate_qtensor(1, 3, 0, 4);
        let mut out = QTensor::scratch();
        qglobal_avg_pool_into(&q, &mut out);
    }

    #[test]
    #[should_panic(expected = "non-zero extents")]
    fn qlinear_rejects_zero_batch() {
        let q = degenerate_qtensor(0, 4, 1, 1);
        let w = QTensor::quantize(&Tensor::ones(Shape::vector(2, 4)));
        qlinear(&q, &w, None);
    }

    #[test]
    #[should_panic(expected = "non-zero extents")]
    fn qconv_rejects_zero_extent_input() {
        let q = degenerate_qtensor(1, 0, 4, 4);
        let w = QTensor::quantize(&Tensor::ones(Shape::new(2, 1, 3, 3)));
        qconv2d(&q, &w, None, 1, 1, 1);
    }

    #[test]
    #[should_panic(expected = "groups must be non-zero")]
    fn qconv_rejects_zero_groups() {
        let q = QTensor::quantize(&Tensor::ones(Shape::new(1, 2, 4, 4)));
        let w = QTensor::quantize(&Tensor::ones(Shape::new(2, 2, 3, 3)));
        qconv2d(&q, &w, None, 1, 1, 0);
    }

    #[test]
    #[should_panic(expected = "non-zero extents")]
    fn quantize_into_rejects_degenerate_shapes() {
        let t = Tensor::from_vec(
            Shape {
                n: 1,
                c: 2,
                h: 0,
                w: 4,
            },
            vec![],
        );
        let mut q = QTensor::scratch();
        QTensor::quantize_with_scale_into(&t, 0.1, &mut q);
    }

    #[test]
    #[should_panic(expected = "MAX_REDUCTION_DEPTH")]
    fn qlinear_rejects_overflowable_reduction_depth() {
        // K = MAX_REDUCTION_DEPTH + 1 all-(±127) products would overflow the
        // i32 accumulator; the bound must trip before any arithmetic runs
        let k = MAX_REDUCTION_DEPTH + 1;
        let x = QTensor::quantize(&Tensor::full(Shape::new(1, 1, 1, k), 1.0));
        let w = QTensor::quantize(&Tensor::full(Shape::new(1, 1, 1, k), 1.0));
        qlinear(&x, &w, None);
    }

    #[test]
    fn simd_and_reference_paths_are_bit_identical_here_too() {
        // the full proptest suite lives in tests/simd_bit_equality.rs; this
        // inline check keeps the contract visible next to the kernels
        let mut rng = StdRng::seed_from_u64(23);
        let x = Tensor::from_fn(Shape::new(1, 3, 9, 17), |_, _, _, _| {
            rng.gen_range(-1.0..1.0)
        });
        let w = Tensor::from_fn(Shape::new(4, 3, 3, 3), |_, _, _, _| {
            rng.gen_range(-1.0..1.0)
        });
        let (qx, qw) = (QTensor::quantize(&x), QTensor::quantize(&w));
        let a = qconv2d(&qx, &qw, None, 1, 1, 1);
        let b = qconv2d_reference(&qx, &qw, None, 1, 1, 1);
        assert_eq!(a.as_slice(), b.as_slice());
    }
}
