//! Symmetric int8 quantisation, matching the 8-bit deployments of RITNet and
//! FBNet-C100 in the paper (Tables 2 and 3 report "(8-bit)" rows).
//!
//! Quantisation is *symmetric per-tensor*: `q = clamp(round(x / scale))`
//! with `scale = max|x| / 127`. Convolutions accumulate in `i32` exactly as
//! the accelerator's MAC lanes would, then rescale to `f32`.

use crate::shape::Shape;
use crate::tensor::Tensor;

/// An int8-quantised tensor with its dequantisation scale.
#[derive(Debug, Clone, PartialEq)]
pub struct QTensor {
    shape: Shape,
    scale: f32,
    data: Vec<i8>,
}

impl QTensor {
    /// Quantises a tensor symmetrically to int8.
    ///
    /// A zero tensor gets scale 1.0 so dequantisation is well-defined.
    pub fn quantize(t: &Tensor) -> Self {
        let max = t.max_abs();
        let scale = if max == 0.0 { 1.0 } else { max / 127.0 };
        let data = t
            .as_slice()
            .iter()
            .map(|&x| (x / scale).round().clamp(-127.0, 127.0) as i8)
            .collect();
        QTensor {
            shape: t.shape(),
            scale,
            data,
        }
    }

    /// Quantises with an explicit scale (e.g. a calibration scale).
    ///
    /// # Panics
    ///
    /// Panics if `scale <= 0`.
    pub fn quantize_with_scale(t: &Tensor, scale: f32) -> Self {
        assert!(scale > 0.0, "scale must be positive");
        let data = t
            .as_slice()
            .iter()
            .map(|&x| (x / scale).round().clamp(-127.0, 127.0) as i8)
            .collect();
        QTensor {
            shape: t.shape(),
            scale,
            data,
        }
    }

    /// Reconstructs the floating-point tensor.
    pub fn dequantize(&self) -> Tensor {
        Tensor::from_vec(
            self.shape,
            self.data.iter().map(|&q| q as f32 * self.scale).collect(),
        )
    }

    /// The tensor shape.
    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// The dequantisation scale.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// The raw int8 values.
    pub fn as_i8(&self) -> &[i8] {
        &self.data
    }
}

/// Quantise-dequantise ("fake quantisation"): returns the f32 tensor the
/// int8 pipeline would effectively compute with. Used to evaluate 8-bit
/// accuracy in the Table 2/3 experiments without duplicating every operator.
pub fn fake_quantize(t: &Tensor) -> Tensor {
    QTensor::quantize(t).dequantize()
}

/// Int8 convolution with exact i32 accumulation, returning an f32 tensor
/// scaled by `input.scale * weight.scale`. Bias (f32) is added after
/// rescaling, as deployed int8 stacks do.
///
/// # Panics
///
/// Same geometry requirements as [`crate::ops::conv2d`].
pub fn qconv2d(
    input: &QTensor,
    weight: &QTensor,
    bias: Option<&[f32]>,
    stride: usize,
    pad: usize,
    groups: usize,
) -> Tensor {
    let ishape = input.shape;
    let wshape = weight.shape;
    let k = wshape.h;
    let oshape = ishape.conv_output(wshape.n, k, pad, stride);
    let cin_g = ishape.c / groups;
    let cout_g = wshape.n / groups;
    assert_eq!(wshape.c, cin_g, "weight/group mismatch");
    let rescale = input.scale * weight.scale;
    Tensor::from_fn(oshape, |n, oc, oy, ox| {
        let g = oc / cout_g;
        let mut acc: i32 = 0;
        for icg in 0..cin_g {
            let ic = g * cin_g + icg;
            for kh in 0..k {
                for kw in 0..k {
                    let iy = (oy * stride + kh) as isize - pad as isize;
                    let ix = (ox * stride + kw) as isize - pad as isize;
                    if iy >= 0 && ix >= 0 && (iy as usize) < ishape.h && (ix as usize) < ishape.w {
                        let xi = input.data[ishape.index(n, ic, iy as usize, ix as usize)] as i32;
                        let wi = weight.data[wshape.index(oc, icg, kh, kw)] as i32;
                        acc += xi * wi;
                    }
                }
            }
        }
        acc as f32 * rescale + bias.map_or(0.0, |b| b[oc])
    })
}

/// Root-mean-square quantisation error of round-tripping `t` through int8.
pub fn quantization_rmse(t: &Tensor) -> f32 {
    let q = fake_quantize(t);
    let diff = t.sub(&q);
    (diff.mul(&diff).mean()).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn round_trip_error_is_bounded_by_half_scale() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = Tensor::from_fn(Shape::new(1, 4, 8, 8), |_, _, _, _| {
            rng.gen_range(-2.0..2.0)
        });
        let q = QTensor::quantize(&t);
        let err = t.sub(&q.dequantize()).max_abs();
        assert!(
            err <= q.scale() * 0.5 + 1e-6,
            "err {err} scale {}",
            q.scale()
        );
    }

    #[test]
    fn zero_tensor_quantizes_cleanly() {
        let t = Tensor::zeros(Shape::vector(1, 8));
        let q = QTensor::quantize(&t);
        assert_eq!(q.scale(), 1.0);
        assert_eq!(q.dequantize(), t);
    }

    #[test]
    fn extremes_map_to_full_range() {
        let t = Tensor::from_vec(Shape::vector(1, 2), vec![-5.0, 5.0]);
        let q = QTensor::quantize(&t);
        assert_eq!(q.as_i8(), &[-127, 127]);
    }

    #[test]
    fn qconv_close_to_float_conv() {
        let mut rng = StdRng::seed_from_u64(5);
        let x = Tensor::from_fn(Shape::new(1, 3, 8, 8), |_, _, _, _| {
            rng.gen_range(-1.0..1.0)
        });
        let w = Tensor::from_fn(Shape::new(4, 3, 3, 3), |_, _, _, _| {
            rng.gen_range(-0.5..0.5)
        });
        let b: Vec<f32> = (0..4).map(|_| rng.gen_range(-0.1..0.1)).collect();
        let float = ops::conv2d(&x, &w, Some(&b), 1, 1, 1);
        let q = qconv2d(
            &QTensor::quantize(&x),
            &QTensor::quantize(&w),
            Some(&b),
            1,
            1,
            1,
        );
        // relative error bounded by quantisation granularity
        let err = float.sub(&q).max_abs();
        assert!(err < 0.15, "int8 conv error too large: {err}");
    }

    #[test]
    fn qconv_depthwise_matches_shape() {
        let x = QTensor::quantize(&Tensor::ones(Shape::new(1, 4, 6, 6)));
        let w = QTensor::quantize(&Tensor::ones(Shape::new(4, 1, 3, 3)));
        let y = qconv2d(&x, &w, None, 1, 1, 4);
        assert_eq!(y.shape().dims(), (1, 4, 6, 6));
        assert!((y.at(0, 0, 1, 1) - 9.0).abs() < 0.1);
    }

    #[test]
    fn quantization_rmse_small_for_smooth_tensors() {
        let t = Tensor::from_fn(Shape::new(1, 1, 16, 16), |_, _, h, w| {
            ((h as f32) / 16.0) - ((w as f32) / 16.0)
        });
        assert!(quantization_rmse(&t) < 0.01);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn explicit_scale_must_be_positive() {
        QTensor::quantize_with_scale(&Tensor::zeros(Shape::vector(1, 1)), 0.0);
    }
}
