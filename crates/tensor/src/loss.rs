//! Loss functions with analytic gradients.
//!
//! The EyeCoD training recipes use a per-pixel cross-entropy family for eye
//! segmentation (the paper adds dice/boundary terms on top of standard CE)
//! and an arc-cosine angular loss for gaze estimation; this module provides
//! both plus plain MSE.

use crate::tensor::Tensor;

/// Per-pixel softmax cross-entropy for dense segmentation.
///
/// * `logits`: `(N, C, H, W)` raw class scores.
/// * `targets`: one class index per pixel, length `N * H * W`, row-major
///   `(n, h, w)`.
///
/// Returns `(mean_loss, grad_logits)`.
///
/// # Panics
///
/// Panics if `targets` has the wrong length or contains an out-of-range
/// class.
pub fn softmax_cross_entropy(logits: &Tensor, targets: &[usize]) -> (f32, Tensor) {
    let s = logits.shape();
    let pixels = s.n * s.spatial_len();
    assert_eq!(
        targets.len(),
        pixels,
        "expected {pixels} targets, got {}",
        targets.len()
    );
    let mut grad = Tensor::zeros(s);
    let mut loss = 0.0f64;
    let inv = 1.0 / pixels as f32;
    for n in 0..s.n {
        for h in 0..s.h {
            for w in 0..s.w {
                let t = targets[(n * s.h + h) * s.w + w];
                assert!(t < s.c, "target class {t} out of range (C = {})", s.c);
                // log-sum-exp with max subtraction for stability
                let mut maxv = f32::NEG_INFINITY;
                for c in 0..s.c {
                    maxv = maxv.max(logits.at(n, c, h, w));
                }
                let mut sum = 0.0f32;
                for c in 0..s.c {
                    sum += (logits.at(n, c, h, w) - maxv).exp();
                }
                let log_z = maxv + sum.ln();
                loss += (log_z - logits.at(n, t, h, w)) as f64;
                for c in 0..s.c {
                    let p = (logits.at(n, c, h, w) - log_z).exp();
                    let indicator = if c == t { 1.0 } else { 0.0 };
                    *grad.at_mut(n, c, h, w) = (p - indicator) * inv;
                }
            }
        }
    }
    ((loss as f32) * inv, grad)
}

/// Mean squared error. Returns `(loss, grad_pred)`.
///
/// # Panics
///
/// Panics if shapes differ.
pub fn mse(pred: &Tensor, target: &Tensor) -> (f32, Tensor) {
    assert_eq!(pred.shape(), target.shape(), "mse shape mismatch");
    let diff = pred.sub(target);
    let n = pred.shape().len() as f32;
    let loss = diff.mul(&diff).sum() / n;
    let grad = diff.scale(2.0 / n);
    (loss, grad)
}

/// Angular (arc-cosine family) gaze loss between predicted and target 3-D
/// gaze vectors.
///
/// The loss per sample is `1 - cos(p̂, t̂)` where hats denote normalisation;
/// its gradient with respect to the *unnormalised* prediction is analytic and
/// well-conditioned, unlike differentiating `acos` directly. `pred` and
/// `target` are `(N, 3, 1, 1)`.
///
/// Returns `(mean_loss, grad_pred)`.
///
/// # Panics
///
/// Panics if either tensor is not `(N, 3, 1, 1)` or a vector has zero norm.
pub fn angular_gaze_loss(pred: &Tensor, target: &Tensor) -> (f32, Tensor) {
    let s = pred.shape();
    assert_eq!((s.c, s.h, s.w), (3, 1, 1), "pred must be (N, 3, 1, 1)");
    assert_eq!(target.shape(), s, "target shape mismatch");
    let mut grad = Tensor::zeros(s);
    let mut loss = 0.0f32;
    for n in 0..s.n {
        let p = [
            pred.at(n, 0, 0, 0),
            pred.at(n, 1, 0, 0),
            pred.at(n, 2, 0, 0),
        ];
        let t = [
            target.at(n, 0, 0, 0),
            target.at(n, 1, 0, 0),
            target.at(n, 2, 0, 0),
        ];
        let pn = (p[0] * p[0] + p[1] * p[1] + p[2] * p[2]).sqrt();
        let tn = (t[0] * t[0] + t[1] * t[1] + t[2] * t[2]).sqrt();
        assert!(pn > 1e-12 && tn > 1e-12, "zero-norm gaze vector");
        let ph = [p[0] / pn, p[1] / pn, p[2] / pn];
        let th = [t[0] / tn, t[1] / tn, t[2] / tn];
        let cos = ph[0] * th[0] + ph[1] * th[1] + ph[2] * th[2];
        loss += 1.0 - cos;
        // d(1 - cos)/dp = -(t̂ - p̂ (p̂·t̂)) / |p|
        for i in 0..3 {
            *grad.at_mut(n, i, 0, 0) = -(th[i] - ph[i] * cos) / pn / s.n as f32;
        }
    }
    (loss / s.n as f32, grad)
}

/// Mean angular error in **degrees** between predicted and target gaze
/// vectors — the gaze-accuracy metric reported throughout the paper
/// (Tables 2, 4, 5).
///
/// # Panics
///
/// Panics on shape mismatch or zero-norm vectors.
pub fn angular_error_degrees(pred: &Tensor, target: &Tensor) -> f32 {
    let s = pred.shape();
    assert_eq!((s.c, s.h, s.w), (3, 1, 1), "pred must be (N, 3, 1, 1)");
    assert_eq!(target.shape(), s, "target shape mismatch");
    let mut total = 0.0f64;
    for n in 0..s.n {
        let p = [
            pred.at(n, 0, 0, 0),
            pred.at(n, 1, 0, 0),
            pred.at(n, 2, 0, 0),
        ];
        let t = [
            target.at(n, 0, 0, 0),
            target.at(n, 1, 0, 0),
            target.at(n, 2, 0, 0),
        ];
        let pn = (p[0] * p[0] + p[1] * p[1] + p[2] * p[2]).sqrt();
        let tn = (t[0] * t[0] + t[1] * t[1] + t[2] * t[2]).sqrt();
        assert!(pn > 1e-12 && tn > 1e-12, "zero-norm gaze vector");
        let cos = ((p[0] * t[0] + p[1] * t[1] + p[2] * t[2]) / (pn * tn)).clamp(-1.0, 1.0);
        total += (cos as f64).acos().to_degrees();
    }
    (total / s.n as f64) as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::Shape;

    #[test]
    fn cross_entropy_perfect_prediction_is_near_zero() {
        // huge logit on the right class
        let mut logits = Tensor::zeros(Shape::new(1, 3, 1, 2));
        *logits.at_mut(0, 1, 0, 0) = 50.0;
        *logits.at_mut(0, 2, 0, 1) = 50.0;
        let (loss, grad) = softmax_cross_entropy(&logits, &[1, 2]);
        assert!(loss < 1e-4);
        assert!(grad.max_abs() < 1e-4);
    }

    #[test]
    fn cross_entropy_uniform_is_log_c() {
        let logits = Tensor::zeros(Shape::new(1, 4, 1, 1));
        let (loss, grad) = softmax_cross_entropy(&logits, &[0]);
        assert!((loss - 4.0f32.ln()).abs() < 1e-5);
        // gradient pushes towards the target class
        assert!(grad.at(0, 0, 0, 0) < 0.0);
        assert!(grad.at(0, 1, 0, 0) > 0.0);
    }

    #[test]
    fn cross_entropy_grad_matches_finite_difference() {
        let logits = Tensor::from_vec(Shape::new(1, 3, 1, 1), vec![0.2, -0.4, 1.0]);
        let targets = [2usize];
        let (_, grad) = softmax_cross_entropy(&logits, &targets);
        let eps = 1e-3;
        for i in 0..3 {
            let mut lp = logits.clone();
            lp.as_mut_slice()[i] += eps;
            let mut lm = logits.clone();
            lm.as_mut_slice()[i] -= eps;
            let num = (softmax_cross_entropy(&lp, &targets).0
                - softmax_cross_entropy(&lm, &targets).0)
                / (2.0 * eps);
            assert!((num - grad.as_slice()[i]).abs() < 1e-3);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn cross_entropy_rejects_bad_class() {
        softmax_cross_entropy(&Tensor::zeros(Shape::new(1, 2, 1, 1)), &[5]);
    }

    #[test]
    fn mse_basics() {
        let p = Tensor::from_vec(Shape::vector(1, 2), vec![1., 3.]);
        let t = Tensor::from_vec(Shape::vector(1, 2), vec![0., 1.]);
        let (loss, grad) = mse(&p, &t);
        assert!((loss - 2.5).abs() < 1e-6);
        assert_eq!(grad.as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn angular_loss_zero_for_parallel_vectors() {
        let p = Tensor::from_vec(Shape::new(1, 3, 1, 1), vec![0., 0., 2.]);
        let t = Tensor::from_vec(Shape::new(1, 3, 1, 1), vec![0., 0., 1.]);
        let (loss, grad) = angular_gaze_loss(&p, &t);
        assert!(loss < 1e-6);
        assert!(grad.max_abs() < 1e-6);
    }

    #[test]
    fn angular_loss_grad_matches_finite_difference() {
        let p = Tensor::from_vec(Shape::new(1, 3, 1, 1), vec![0.3, -0.5, 0.9]);
        let t = Tensor::from_vec(Shape::new(1, 3, 1, 1), vec![0.1, 0.2, 1.0]);
        let (_, grad) = angular_gaze_loss(&p, &t);
        let eps = 1e-3;
        for i in 0..3 {
            let mut pp = p.clone();
            pp.as_mut_slice()[i] += eps;
            let mut pm = p.clone();
            pm.as_mut_slice()[i] -= eps;
            let num = (angular_gaze_loss(&pp, &t).0 - angular_gaze_loss(&pm, &t).0) / (2.0 * eps);
            assert!((num - grad.as_slice()[i]).abs() < 1e-3);
        }
    }

    #[test]
    fn angular_error_degrees_orthogonal_is_90() {
        let p = Tensor::from_vec(Shape::new(1, 3, 1, 1), vec![1., 0., 0.]);
        let t = Tensor::from_vec(Shape::new(1, 3, 1, 1), vec![0., 1., 0.]);
        assert!((angular_error_degrees(&p, &t) - 90.0).abs() < 1e-4);
    }

    #[test]
    fn angular_error_is_scale_invariant() {
        let p = Tensor::from_vec(Shape::new(1, 3, 1, 1), vec![0.2, 0.1, 0.95]);
        let t = Tensor::from_vec(Shape::new(1, 3, 1, 1), vec![0.0, 0.0, 1.0]);
        let e1 = angular_error_degrees(&p, &t);
        let e2 = angular_error_degrees(&p.scale(7.5), &t);
        assert!((e1 - e2).abs() < 1e-4);
    }
}
