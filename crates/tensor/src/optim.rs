//! Optimisers for the proxy-network training loops (the paper uses Adam for
//! both the segmentation and gaze models).

use crate::layer::Param;
use crate::tensor::Tensor;

/// Stochastic gradient descent with classical momentum.
#[derive(Debug)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Creates an SGD optimiser.
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0`.
    pub fn new(lr: f32, momentum: f32, weight_decay: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Sgd {
            lr,
            momentum,
            weight_decay,
            velocity: Vec::new(),
        }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Sets the learning rate (for schedules).
    pub fn set_lr(&mut self, lr: f32) {
        assert!(lr > 0.0, "learning rate must be positive");
        self.lr = lr;
    }

    /// Applies one update step to `params`, consuming their gradients.
    ///
    /// The parameter list must be presented in the same order on every call
    /// (optimiser state is positional).
    pub fn step(&mut self, params: &mut [&mut Param]) {
        if self.velocity.is_empty() {
            self.velocity = params
                .iter()
                .map(|p| Tensor::zeros(p.value.shape()))
                .collect();
        }
        assert_eq!(
            self.velocity.len(),
            params.len(),
            "parameter list changed size"
        );
        for (p, v) in params.iter_mut().zip(&mut self.velocity) {
            let mut g = p.grad.clone();
            if self.weight_decay > 0.0 {
                g.axpy(self.weight_decay, &p.value);
            }
            *v = v.scale(self.momentum).add(&g);
            p.value.axpy(-self.lr, v);
        }
    }
}

/// The Adam optimiser (Kingma & Ba) used by the paper's training settings
/// (lr 1e-3 for segmentation, 5e-4 for gaze estimation).
#[derive(Debug)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Creates an Adam optimiser with standard betas (0.9, 0.999).
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0`.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Sets the learning rate (for schedules).
    pub fn set_lr(&mut self, lr: f32) {
        assert!(lr > 0.0, "learning rate must be positive");
        self.lr = lr;
    }

    /// Applies one update step to `params`, consuming their gradients.
    ///
    /// The parameter list must be presented in the same order on every call.
    pub fn step(&mut self, params: &mut [&mut Param]) {
        if self.m.is_empty() {
            self.m = params
                .iter()
                .map(|p| Tensor::zeros(p.value.shape()))
                .collect();
            self.v = params
                .iter()
                .map(|p| Tensor::zeros(p.value.shape()))
                .collect();
        }
        assert_eq!(self.m.len(), params.len(), "parameter list changed size");
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for ((p, m), v) in params.iter_mut().zip(&mut self.m).zip(&mut self.v) {
            let g = &p.grad;
            *m = m.scale(self.beta1).add(&g.scale(1.0 - self.beta1));
            *v = v.zip(g, |vi, gi| self.beta2 * vi + (1.0 - self.beta2) * gi * gi);
            let lr = self.lr;
            let eps = self.eps;
            let update = m.zip(v, |mi, vi| {
                let mhat = mi / bc1;
                let vhat = vi / bc2;
                -lr * mhat / (vhat.sqrt() + eps)
            });
            p.value.axpy(1.0, &update);
        }
    }
}

/// Cosine learning-rate schedule with a linear warm-up — the standard
/// recipe for training the paper's networks from scratch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CosineSchedule {
    /// Peak learning rate after warm-up.
    pub base_lr: f32,
    /// Final learning rate at the end of training.
    pub min_lr: f32,
    /// Warm-up steps (linear ramp from 0).
    pub warmup_steps: u64,
    /// Total steps including warm-up.
    pub total_steps: u64,
}

impl CosineSchedule {
    /// Creates a schedule.
    ///
    /// # Panics
    ///
    /// Panics if `total_steps` is zero, warm-up exceeds the total, or the
    /// rates are inconsistent.
    pub fn new(base_lr: f32, min_lr: f32, warmup_steps: u64, total_steps: u64) -> Self {
        assert!(total_steps > 0, "total_steps must be non-zero");
        assert!(
            warmup_steps < total_steps,
            "warm-up must end before the schedule"
        );
        assert!(
            base_lr > 0.0 && min_lr >= 0.0 && min_lr <= base_lr,
            "inconsistent rates"
        );
        CosineSchedule {
            base_lr,
            min_lr,
            warmup_steps,
            total_steps,
        }
    }

    /// Learning rate at `step` (clamped past the end).
    pub fn lr_at(&self, step: u64) -> f32 {
        if step < self.warmup_steps {
            return self.base_lr * (step as f32 + 1.0) / self.warmup_steps as f32;
        }
        let t = ((step - self.warmup_steps) as f32 / (self.total_steps - self.warmup_steps) as f32)
            .min(1.0);
        self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (1.0 + (std::f32::consts::PI * t).cos())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::Shape;

    /// Minimise f(x) = (x - 3)^2 elementwise with each optimiser.
    fn run_quadratic(mut step: impl FnMut(&mut [&mut Param])) -> f32 {
        let mut p = Param::new(Tensor::zeros(Shape::vector(1, 4)));
        for _ in 0..400 {
            p.zero_grad();
            let g = p.value.map(|x| 2.0 * (x - 3.0));
            p.grad = g;
            step(&mut [&mut p]);
        }
        p.value.map(|x| (x - 3.0).abs()).max()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.05, 0.9, 0.0);
        let residual = run_quadratic(|ps| opt.step(ps));
        assert!(residual < 1e-3, "residual {residual}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.05);
        let residual = run_quadratic(|ps| opt.step(ps));
        assert!(residual < 1e-2, "residual {residual}");
    }

    #[test]
    fn sgd_weight_decay_shrinks_params() {
        let mut p = Param::new(Tensor::ones(Shape::vector(1, 2)));
        let mut opt = Sgd::new(0.1, 0.0, 0.5);
        // zero task gradient: only decay acts
        for _ in 0..10 {
            p.zero_grad();
            opt.step(&mut [&mut p]);
        }
        assert!(p.value.max_abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "changed size")]
    fn optimiser_rejects_changing_param_list() {
        let mut a = Param::new(Tensor::zeros(Shape::vector(1, 1)));
        let mut b = Param::new(Tensor::zeros(Shape::vector(1, 1)));
        let mut opt = Adam::new(0.01);
        opt.step(&mut [&mut a]);
        opt.step(&mut [&mut a, &mut b]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_non_positive_lr() {
        Sgd::new(0.0, 0.9, 0.0);
    }

    #[test]
    fn cosine_schedule_shape() {
        let s = CosineSchedule::new(1e-3, 1e-5, 10, 110);
        // warm-up ramps
        assert!(s.lr_at(0) < s.lr_at(5));
        assert!(s.lr_at(5) < s.lr_at(9));
        // peak right after warm-up
        assert!((s.lr_at(10) - 1e-3).abs() < 1e-6);
        // monotone decay to min
        assert!(s.lr_at(50) < s.lr_at(10));
        assert!((s.lr_at(110) - 1e-5).abs() < 1e-7);
        // clamped past the end
        assert_eq!(s.lr_at(500), s.lr_at(110));
    }

    #[test]
    fn cosine_schedule_drives_adam() {
        let s = CosineSchedule::new(0.05, 1e-4, 2, 50);
        let mut opt = Adam::new(s.lr_at(0));
        let mut p = Param::new(Tensor::zeros(Shape::vector(1, 2)));
        for step in 0..50 {
            opt.set_lr(s.lr_at(step));
            p.zero_grad();
            p.grad = p.value.map(|x| 2.0 * (x - 1.0));
            opt.step(&mut [&mut p]);
        }
        assert!(p.value.map(|x| (x - 1.0).abs()).max() < 0.1);
    }

    #[test]
    #[should_panic(expected = "warm-up must end")]
    fn cosine_rejects_bad_warmup() {
        CosineSchedule::new(1e-3, 0.0, 100, 100);
    }
}
