//! Stateful, trainable layer objects built on the functional ops.
//!
//! Each [`Layer`] caches what its backward pass needs during `forward`, so a
//! network is trained by calling `forward(.., train = true)`, computing a loss
//! gradient, then calling `backward` in reverse order. The proxy networks in
//! `eyecod-models` are wired from these layers.

use crate::init;
use crate::ops;
use crate::shape::Shape;
use crate::tensor::Tensor;
use rand::Rng;

/// A trainable parameter: a value tensor and its accumulated gradient.
#[derive(Debug, Clone)]
pub struct Param {
    /// Current parameter value.
    pub value: Tensor,
    /// Accumulated gradient (same shape as `value`).
    pub grad: Tensor,
}

impl Param {
    /// Wraps a value tensor with a zeroed gradient buffer.
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape());
        Param { value, grad }
    }

    /// Resets the gradient to zero.
    pub fn zero_grad(&mut self) {
        self.grad.fill(0.0);
    }

    /// Number of scalar parameters.
    pub fn len(&self) -> usize {
        self.value.shape().len()
    }

    /// Always false; parameters are non-empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// A neural-network layer with explicit forward/backward passes.
///
/// Layers are used as trait objects inside [`Sequential`]; all methods are
/// object-safe.
pub trait Layer {
    /// Runs the layer. When `train` is true the layer caches whatever its
    /// backward pass will need.
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor;

    /// Propagates the gradient. Must be called after a `forward` with
    /// `train = true`; accumulates parameter gradients and returns the
    /// gradient with respect to the layer input.
    ///
    /// # Panics
    ///
    /// Implementations panic if no training-mode forward pass preceded the
    /// call.
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;

    /// Mutable access to the layer's parameters (empty for stateless layers).
    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    /// Total number of scalar parameters.
    fn param_count(&mut self) -> usize {
        self.params_mut().iter().map(|p| p.len()).sum()
    }
}

fn take_cache(cache: &mut Option<Tensor>, layer: &str) -> Tensor {
    cache
        .take()
        .unwrap_or_else(|| panic!("{layer}::backward called without a training forward pass"))
}

/// 2-D convolution layer with optional bias.
#[derive(Debug, Clone)]
pub struct Conv2d {
    weight: Param,
    bias: Option<Param>,
    stride: usize,
    pad: usize,
    groups: usize,
    cached_input: Option<Tensor>,
}

impl Conv2d {
    /// Creates a convolution with Kaiming-initialised weights.
    ///
    /// # Panics
    ///
    /// Panics if `c_in` is not divisible by `groups`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        c_in: usize,
        c_out: usize,
        k: usize,
        stride: usize,
        pad: usize,
        groups: usize,
        bias: bool,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(
            c_in.is_multiple_of(groups),
            "c_in {c_in} not divisible by groups {groups}"
        );
        let wshape = Shape::new(c_out, c_in / groups, k, k);
        let fan_in = (c_in / groups) * k * k;
        let weight = Param::new(init::kaiming(wshape, fan_in, rng));
        let bias = bias.then(|| Param::new(Tensor::zeros(Shape::vector(1, c_out))));
        Conv2d {
            weight,
            bias,
            stride,
            pad,
            groups,
            cached_input: None,
        }
    }

    /// Convenience constructor for a depth-wise convolution.
    pub fn depthwise(c: usize, k: usize, stride: usize, pad: usize, rng: &mut impl Rng) -> Self {
        Conv2d::new(c, c, k, stride, pad, c, false, rng)
    }

    /// The weight tensor (e.g. for quantised inference paths).
    pub fn weight(&self) -> &Tensor {
        &self.weight.value
    }

    /// The bias values, if the layer has a bias.
    pub fn bias(&self) -> Option<&[f32]> {
        self.bias.as_ref().map(|b| b.value.as_slice())
    }

    /// The stride of the convolution.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// The zero padding of the convolution.
    pub fn pad(&self) -> usize {
        self.pad
    }

    /// The group count (`C_in` for a depth-wise convolution).
    pub fn groups(&self) -> usize {
        self.groups
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        if train {
            self.cached_input = Some(input.clone());
        }
        ops::conv2d(
            input,
            &self.weight.value,
            self.bias.as_ref().map(|b| b.value.as_slice()),
            self.stride,
            self.pad,
            self.groups,
        )
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input = take_cache(&mut self.cached_input, "Conv2d");
        let grads = ops::conv2d_backward(
            &input,
            &self.weight.value,
            grad_out,
            self.stride,
            self.pad,
            self.groups,
        );
        self.weight.grad.axpy(1.0, &grads.weight);
        if let Some(b) = &mut self.bias {
            for (g, &d) in b.grad.as_mut_slice().iter_mut().zip(&grads.bias) {
                *g += d;
            }
        }
        grads.input
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut v = vec![&mut self.weight];
        if let Some(b) = &mut self.bias {
            v.push(b);
        }
        v
    }
}

/// Fully connected layer.
#[derive(Debug, Clone)]
pub struct Linear {
    weight: Param,
    bias: Param,
    cached_input: Option<Tensor>,
}

impl Linear {
    /// Creates a linear layer with Xavier-initialised weights and zero bias.
    pub fn new(c_in: usize, c_out: usize, rng: &mut impl Rng) -> Self {
        Linear {
            weight: Param::new(init::xavier(Shape::vector(c_out, c_in), c_in, c_out, rng)),
            bias: Param::new(Tensor::zeros(Shape::vector(1, c_out))),
            cached_input: None,
        }
    }

    /// The weight tensor `(C_out, C_in, 1, 1)` (e.g. for quantised paths).
    pub fn weight(&self) -> &Tensor {
        &self.weight.value
    }

    /// The bias values.
    pub fn bias(&self) -> &[f32] {
        self.bias.value.as_slice()
    }
}

impl Layer for Linear {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        if train {
            self.cached_input = Some(input.clone());
        }
        ops::linear(input, &self.weight.value, Some(self.bias.value.as_slice()))
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input = take_cache(&mut self.cached_input, "Linear");
        let grads = ops::linear_backward(&input, &self.weight.value, grad_out);
        self.weight.grad.axpy(1.0, &grads.weight);
        for (g, &d) in self.bias.grad.as_mut_slice().iter_mut().zip(&grads.bias) {
            *g += d;
        }
        grads.input
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }
}

/// Batch normalisation layer (per-channel affine, tracked running stats).
#[derive(Debug, Clone)]
pub struct BatchNorm2d {
    gamma: Param,
    beta: Param,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    eps: f32,
    momentum: f32,
    cache: Option<ops::BatchNormCache>,
}

impl BatchNorm2d {
    /// Creates a batch-norm layer for `c` channels.
    pub fn new(c: usize) -> Self {
        BatchNorm2d {
            gamma: Param::new(Tensor::ones(Shape::vector(1, c))),
            beta: Param::new(Tensor::zeros(Shape::vector(1, c))),
            running_mean: vec![0.0; c],
            running_var: vec![1.0; c],
            eps: 1e-5,
            momentum: 0.1,
            cache: None,
        }
    }

    /// Per-channel scale `γ`.
    pub fn gamma(&self) -> &[f32] {
        self.gamma.value.as_slice()
    }

    /// Per-channel shift `β`.
    pub fn beta(&self) -> &[f32] {
        self.beta.value.as_slice()
    }

    /// Tracked running means (what inference-mode normalisation uses).
    pub fn running_mean(&self) -> &[f32] {
        &self.running_mean
    }

    /// Tracked running variances.
    pub fn running_var(&self) -> &[f32] {
        &self.running_var
    }

    /// The numerical-stability epsilon.
    pub fn eps(&self) -> f32 {
        self.eps
    }
}

impl Layer for BatchNorm2d {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let (out, cache) = ops::batch_norm(
            input,
            self.gamma.value.as_slice(),
            self.beta.value.as_slice(),
            &mut self.running_mean,
            &mut self.running_var,
            self.eps,
            self.momentum,
            train,
        );
        self.cache = cache;
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let cache = self
            .cache
            .take()
            .expect("BatchNorm2d::backward called without a training forward pass");
        let grads = ops::batch_norm_backward(&cache, self.gamma.value.as_slice(), grad_out);
        for (g, &d) in self.gamma.grad.as_mut_slice().iter_mut().zip(&grads.gamma) {
            *g += d;
        }
        for (g, &d) in self.beta.grad.as_mut_slice().iter_mut().zip(&grads.beta) {
            *g += d;
        }
        grads.input
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.gamma, &mut self.beta]
    }
}

/// Leaky ReLU activation layer (`alpha = 0` gives plain ReLU).
#[derive(Debug, Clone)]
pub struct LeakyRelu {
    alpha: f32,
    cached_input: Option<Tensor>,
}

impl LeakyRelu {
    /// Creates a leaky ReLU with the given negative slope.
    pub fn new(alpha: f32) -> Self {
        LeakyRelu {
            alpha,
            cached_input: None,
        }
    }

    /// Plain ReLU.
    pub fn relu() -> Self {
        LeakyRelu::new(0.0)
    }

    /// The negative slope (0 for plain ReLU).
    pub fn alpha(&self) -> f32 {
        self.alpha
    }
}

impl Layer for LeakyRelu {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        if train {
            self.cached_input = Some(input.clone());
        }
        ops::leaky_relu(input, self.alpha)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input = take_cache(&mut self.cached_input, "LeakyRelu");
        ops::leaky_relu_backward(&input, grad_out, self.alpha)
    }
}

/// Inverted dropout: during training each activation is zeroed with
/// probability `p` and survivors are scaled by `1/(1-p)`, so inference is
/// the identity. The internal RNG is seeded at construction, making
/// training runs reproducible.
#[derive(Debug, Clone)]
pub struct Dropout {
    p: f32,
    rng: rand::rngs::StdRng,
    mask: Option<Tensor>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p < 1`.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "drop probability must be in [0, 1)"
        );
        use rand::SeedableRng;
        Dropout {
            p,
            rng: rand::rngs::StdRng::seed_from_u64(seed),
            mask: None,
        }
    }
}

impl Layer for Dropout {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        if !train || self.p == 0.0 {
            return input.clone();
        }
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        let mask = Tensor::from_fn(input.shape(), |_, _, _, _| {
            if self.rng.gen::<f32>() < keep {
                scale
            } else {
                0.0
            }
        });
        let out = input.mul(&mask);
        self.mask = Some(mask);
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mask = self
            .mask
            .take()
            .expect("Dropout::backward called without a training forward pass");
        grad_out.mul(&mask)
    }
}

/// Max-pooling layer.
#[derive(Debug, Clone)]
pub struct MaxPool2d {
    k: usize,
    stride: usize,
    cache: Option<ops::MaxPoolCache>,
}

impl MaxPool2d {
    /// Creates a max-pool layer with window `k` and stride `stride`.
    pub fn new(k: usize, stride: usize) -> Self {
        MaxPool2d {
            k,
            stride,
            cache: None,
        }
    }
}

impl Layer for MaxPool2d {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let (out, cache) = ops::max_pool2d(input, self.k, self.stride);
        if train {
            self.cache = Some(cache);
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let cache = self
            .cache
            .take()
            .expect("MaxPool2d::backward called without a training forward pass");
        ops::max_pool2d_backward(&cache, grad_out)
    }
}

/// Global average pooling layer (`(N, C, H, W)` → `(N, C, 1, 1)`).
#[derive(Debug, Clone, Default)]
pub struct GlobalAvgPool {
    input_shape: Option<Shape>,
}

impl GlobalAvgPool {
    /// Creates a global average pooling layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for GlobalAvgPool {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        if train {
            self.input_shape = Some(input.shape());
        }
        ops::global_avg_pool(input)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let shape = self
            .input_shape
            .take()
            .expect("GlobalAvgPool::backward called without a training forward pass");
        ops::global_avg_pool_backward(shape, grad_out)
    }
}

/// Nearest-neighbour upsampling layer.
#[derive(Debug, Clone)]
pub struct Upsample {
    factor: usize,
    input_shape: Option<Shape>,
}

impl Upsample {
    /// Creates an upsampling layer with the given integer factor.
    pub fn new(factor: usize) -> Self {
        Upsample {
            factor,
            input_shape: None,
        }
    }
}

impl Layer for Upsample {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        if train {
            self.input_shape = Some(input.shape());
        }
        ops::upsample_nearest(input, self.factor)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let shape = self
            .input_shape
            .take()
            .expect("Upsample::backward called without a training forward pass");
        ops::upsample_nearest_backward(shape, grad_out, self.factor)
    }
}

/// A chain of layers executed in order.
///
/// # Example
///
/// ```
/// use eyecod_tensor::layer::{Sequential, Conv2d, LeakyRelu};
/// use eyecod_tensor::{Layer, Tensor, Shape};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mut net = Sequential::new();
/// net.push(Conv2d::new(1, 4, 3, 1, 1, 1, true, &mut rng));
/// net.push(LeakyRelu::relu());
/// let y = net.forward(&Tensor::ones(Shape::new(1, 1, 8, 8)), false);
/// assert_eq!(y.shape().dims(), (1, 4, 8, 8));
/// ```
#[derive(Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Creates an empty chain.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a layer to the chain.
    pub fn push(&mut self, layer: impl Layer + 'static) {
        self.layers.push(Box::new(layer));
    }

    /// Number of layers in the chain.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the chain is empty.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Zeroes the gradients of every parameter in the chain.
    pub fn zero_grad(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }
}

impl Layer for Sequential {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x, train);
        }
        x
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut g = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_mut())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn conv_layer_params_and_shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut conv = Conv2d::new(3, 8, 3, 1, 1, 1, true, &mut rng);
        assert_eq!(conv.param_count(), 3 * 8 * 9 + 8);
        let y = conv.forward(&Tensor::ones(Shape::new(2, 3, 6, 6)), false);
        assert_eq!(y.shape().dims(), (2, 8, 6, 6));
    }

    #[test]
    fn depthwise_constructor() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut dw = Conv2d::depthwise(4, 3, 1, 1, &mut rng);
        assert_eq!(dw.param_count(), 4 * 9);
        let y = dw.forward(&Tensor::ones(Shape::new(1, 4, 5, 5)), false);
        assert_eq!(y.shape().dims(), (1, 4, 5, 5));
    }

    #[test]
    #[should_panic(expected = "without a training forward pass")]
    fn backward_requires_training_forward() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut conv = Conv2d::new(1, 1, 3, 1, 1, 1, false, &mut rng);
        conv.forward(&Tensor::ones(Shape::new(1, 1, 4, 4)), false);
        conv.backward(&Tensor::ones(Shape::new(1, 1, 4, 4)));
    }

    #[test]
    fn sequential_trains_toward_target() {
        // A tiny regression: learn y = 2x with a 1x1 conv.
        let mut rng = StdRng::seed_from_u64(4);
        let mut net = Sequential::new();
        net.push(Conv2d::new(1, 1, 1, 1, 0, 1, false, &mut rng));
        let x = Tensor::from_vec(Shape::new(4, 1, 1, 1), vec![1., 2., 3., 4.]);
        let target = x.scale(2.0);
        let mut last_loss = f32::INFINITY;
        for _ in 0..200 {
            net.zero_grad();
            let y = net.forward(&x, true);
            let diff = y.sub(&target);
            let loss = diff.mul(&diff).mean();
            let grad = diff.scale(2.0 / x.shape().len() as f32);
            net.backward(&grad);
            for p in net.params_mut() {
                let g = p.grad.clone();
                p.value.axpy(-0.05, &g);
            }
            last_loss = loss;
        }
        assert!(last_loss < 1e-4, "did not converge: {last_loss}");
    }

    #[test]
    fn sequential_backward_shape_round_trip() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut net = Sequential::new();
        net.push(Conv2d::new(2, 4, 3, 1, 1, 1, true, &mut rng));
        net.push(BatchNorm2d::new(4));
        net.push(LeakyRelu::new(0.1));
        net.push(MaxPool2d::new(2, 2));
        net.push(GlobalAvgPool::new());
        net.push(Linear::new(4, 3, &mut rng));
        let x = Tensor::ones(Shape::new(2, 2, 8, 8));
        let y = net.forward(&x, true);
        assert_eq!(y.shape().dims(), (2, 3, 1, 1));
        let gin = net.backward(&Tensor::ones(y.shape()));
        assert_eq!(gin.shape(), x.shape());
        assert!(!gin.has_non_finite());
    }

    #[test]
    fn dropout_scales_survivors_and_masks_gradient() {
        let mut d = Dropout::new(0.5, 42);
        let x = Tensor::ones(Shape::new(1, 1, 16, 16));
        let y = d.forward(&x, true);
        // survivors are scaled by 2, dropped entries are 0
        for &v in y.as_slice() {
            assert!(v == 0.0 || (v - 2.0).abs() < 1e-6);
        }
        // expectation preserved within sampling noise
        assert!((y.mean() - 1.0).abs() < 0.25, "mean {}", y.mean());
        // gradient flows exactly through the surviving positions
        let g = d.backward(&Tensor::ones(x.shape()));
        for (gv, yv) in g.as_slice().iter().zip(y.as_slice()) {
            assert_eq!(*gv == 0.0, *yv == 0.0);
        }
        // inference is the identity
        let y_inf = d.forward(&x, false);
        assert_eq!(y_inf, x);
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1)")]
    fn dropout_rejects_bad_probability() {
        Dropout::new(1.0, 0);
    }

    #[test]
    fn upsample_layer_round_trip() {
        let mut up = Upsample::new(2);
        let x = Tensor::ones(Shape::new(1, 1, 2, 2));
        let y = up.forward(&x, true);
        assert_eq!(y.shape().dims(), (1, 1, 4, 4));
        let gin = up.backward(&Tensor::ones(y.shape()));
        assert_eq!(gin.as_slice(), &[4., 4., 4., 4.]);
    }
}
