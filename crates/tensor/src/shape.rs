//! NCHW tensor shapes and shape arithmetic.

use std::fmt;

/// The shape of an NCHW tensor: batch, channels, height, width.
///
/// A `Shape` is cheap to copy and compares structurally. Vectors (e.g. fully
/// connected activations) are represented with `h == w == 1`.
///
/// # Example
///
/// ```
/// use eyecod_tensor::Shape;
/// let s = Shape::new(2, 3, 4, 5);
/// assert_eq!(s.len(), 120);
/// assert_eq!(s.dims(), (2, 3, 4, 5));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Shape {
    /// Batch size.
    pub n: usize,
    /// Channels.
    pub c: usize,
    /// Height.
    pub h: usize,
    /// Width.
    pub w: usize,
}

impl Shape {
    /// Creates a new shape.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(n: usize, c: usize, h: usize, w: usize) -> Self {
        assert!(
            n > 0 && c > 0 && h > 0 && w > 0,
            "shape dimensions must be non-zero, got ({n}, {c}, {h}, {w})"
        );
        Shape { n, c, h, w }
    }

    /// A shape describing a batch of vectors (`h == w == 1`).
    pub fn vector(n: usize, c: usize) -> Self {
        Shape::new(n, c, 1, 1)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.n * self.c * self.h * self.w
    }

    /// Always false: shapes have non-zero dimensions by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The four dimensions as a tuple `(n, c, h, w)`.
    pub fn dims(&self) -> (usize, usize, usize, usize) {
        (self.n, self.c, self.h, self.w)
    }

    /// Flat index of element `(n, c, h, w)` in row-major NCHW order.
    #[inline]
    pub fn index(&self, n: usize, c: usize, h: usize, w: usize) -> usize {
        debug_assert!(n < self.n && c < self.c && h < self.h && w < self.w);
        ((n * self.c + c) * self.h + h) * self.w + w
    }

    /// Number of elements in one batch item (`c * h * w`).
    pub fn item_len(&self) -> usize {
        self.c * self.h * self.w
    }

    /// Spatial size (`h * w`).
    pub fn spatial_len(&self) -> usize {
        self.h * self.w
    }

    /// Output spatial extent of a convolution/pooling window along one axis.
    ///
    /// `extent` is the input size, `k` the kernel size, `pad` the symmetric
    /// padding and `stride` the stride.
    ///
    /// # Panics
    ///
    /// Panics if the window does not fit (`extent + 2*pad < k`) or the stride
    /// is zero.
    pub fn conv_out_extent(extent: usize, k: usize, pad: usize, stride: usize) -> usize {
        assert!(stride > 0, "stride must be non-zero");
        assert!(
            extent + 2 * pad >= k,
            "kernel {k} does not fit input extent {extent} with padding {pad}"
        );
        (extent + 2 * pad - k) / stride + 1
    }

    /// The output shape of a 2-D convolution over this shape.
    pub fn conv_output(&self, c_out: usize, k: usize, pad: usize, stride: usize) -> Shape {
        Shape::new(
            self.n,
            c_out,
            Self::conv_out_extent(self.h, k, pad, stride),
            Self::conv_out_extent(self.w, k, pad, stride),
        )
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shape({}x{}x{}x{})", self.n, self.c, self.h, self.w)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}x{}", self.n, self.c, self.h, self.w)
    }
}

impl From<(usize, usize, usize, usize)> for Shape {
    fn from((n, c, h, w): (usize, usize, usize, usize)) -> Self {
        Shape::new(n, c, h, w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn len_and_dims() {
        let s = Shape::new(2, 3, 4, 5);
        assert_eq!(s.len(), 120);
        assert_eq!(s.dims(), (2, 3, 4, 5));
        assert_eq!(s.item_len(), 60);
        assert_eq!(s.spatial_len(), 20);
    }

    #[test]
    fn index_is_row_major() {
        let s = Shape::new(2, 3, 4, 5);
        assert_eq!(s.index(0, 0, 0, 0), 0);
        assert_eq!(s.index(0, 0, 0, 1), 1);
        assert_eq!(s.index(0, 0, 1, 0), 5);
        assert_eq!(s.index(0, 1, 0, 0), 20);
        assert_eq!(s.index(1, 0, 0, 0), 60);
        assert_eq!(s.index(1, 2, 3, 4), 119);
    }

    #[test]
    fn conv_out_extent_matches_formula() {
        assert_eq!(Shape::conv_out_extent(8, 3, 1, 1), 8);
        assert_eq!(Shape::conv_out_extent(8, 3, 0, 1), 6);
        assert_eq!(Shape::conv_out_extent(8, 3, 1, 2), 4);
        assert_eq!(Shape::conv_out_extent(7, 7, 0, 1), 1);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn conv_out_extent_rejects_oversized_kernel() {
        Shape::conv_out_extent(2, 5, 0, 1);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dim_rejected() {
        Shape::new(1, 0, 2, 2);
    }

    #[test]
    fn conv_output_shape() {
        let s = Shape::new(1, 3, 32, 32);
        assert_eq!(s.conv_output(16, 3, 1, 2), Shape::new(1, 16, 16, 16));
    }

    #[test]
    fn display_and_from_tuple() {
        let s: Shape = (1, 2, 3, 4).into();
        assert_eq!(format!("{s}"), "1x2x3x4");
        assert_eq!(format!("{s:?}"), "Shape(1x2x3x4)");
    }
}
