//! Property-based tests of the tensor crate's public operator contracts.

use eyecod_tensor::ops;
use eyecod_tensor::{Shape, Tensor};
use proptest::prelude::*;

fn tensor_strategy(n: usize, c: usize, h: usize, w: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-2.0f32..2.0, n * c * h * w)
        .prop_map(move |v| Tensor::from_vec(Shape::new(n, c, h, w), v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The optimised convolution agrees with the quadruple-loop reference
    /// across random geometry (stride/pad/kernel/groups).
    #[test]
    fn conv2d_matches_reference(
        x in tensor_strategy(1, 4, 9, 7),
        wv in proptest::collection::vec(-1.0f32..1.0, 8 * 2 * 3 * 3),
        stride in 1usize..3,
        pad in 0usize..2,
    ) {
        let w = Tensor::from_vec(Shape::new(8, 2, 3, 3), wv);
        let fast = ops::conv2d(&x, &w, None, stride, pad.max(1), 2);
        let slow = ops::conv2d_naive(&x, &w, None, stride, pad.max(1), 2);
        prop_assert!(fast.sub(&slow).max_abs() < 1e-4);
    }

    /// Max-pool backward conserves the gradient mass.
    #[test]
    fn max_pool_backward_conserves_gradient(x in tensor_strategy(1, 2, 6, 6)) {
        let (y, cache) = ops::max_pool2d(&x, 2, 2);
        let go = Tensor::ones(y.shape());
        let gin = ops::max_pool2d_backward(&cache, &go);
        prop_assert!((gin.sum() - go.sum()).abs() < 1e-4);
    }

    /// Upsample backward is the adjoint of upsample forward:
    /// <up(x), g> == <x, up_backward(g)>.
    #[test]
    fn upsample_is_adjoint(
        x in tensor_strategy(1, 2, 3, 3),
        g in tensor_strategy(1, 2, 6, 6),
    ) {
        let up = ops::upsample_nearest(&x, 2);
        let lhs = up.mul(&g).sum();
        let gb = ops::upsample_nearest_backward(x.shape(), &g, 2);
        let rhs = x.mul(&gb).sum();
        prop_assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    /// Bilinear resize stays inside the input's value range.
    #[test]
    fn bilinear_resize_is_bounded(
        x in tensor_strategy(1, 1, 5, 7),
        oh in 2usize..12,
        ow in 2usize..12,
    ) {
        let y = ops::resize_bilinear(&x, oh, ow);
        prop_assert!(y.min() >= x.min() - 1e-5);
        prop_assert!(y.max() <= x.max() + 1e-5);
    }

    /// Softmax outputs form a distribution and preserve argmax per pixel.
    #[test]
    fn softmax_preserves_argmax(x in tensor_strategy(1, 5, 2, 2)) {
        let y = ops::softmax_channels(&x);
        let s = x.shape();
        for h in 0..s.h {
            for w in 0..s.w {
                let sum: f32 = (0..s.c).map(|c| y.at(0, c, h, w)).sum();
                prop_assert!((sum - 1.0).abs() < 1e-4);
                let argmax_x = (0..s.c).max_by(|&a, &b| {
                    x.at(0, a, h, w).partial_cmp(&x.at(0, b, h, w)).unwrap()
                });
                let argmax_y = (0..s.c).max_by(|&a, &b| {
                    y.at(0, a, h, w).partial_cmp(&y.at(0, b, h, w)).unwrap()
                });
                prop_assert_eq!(argmax_x, argmax_y);
            }
        }
    }

    /// Cross-entropy gradients sum to zero over channels at each pixel
    /// (softmax Jacobian property).
    #[test]
    fn cross_entropy_grad_sums_to_zero(
        x in tensor_strategy(1, 4, 2, 2),
        t in proptest::collection::vec(0usize..4, 4),
    ) {
        let (_, grad) = eyecod_tensor::loss::softmax_cross_entropy(&x, &t);
        let s = x.shape();
        for h in 0..s.h {
            for w in 0..s.w {
                let sum: f32 = (0..s.c).map(|c| grad.at(0, c, h, w)).sum();
                prop_assert!(sum.abs() < 1e-5);
            }
        }
    }

    /// Quantised convolution tracks the float convolution within the
    /// accumulation of per-element quantisation steps.
    #[test]
    fn qconv_tracks_float_conv(
        x in tensor_strategy(1, 2, 6, 6),
        wv in proptest::collection::vec(-0.5f32..0.5, 3 * 2 * 3 * 3),
    ) {
        use eyecod_tensor::quant::{qconv2d, QTensor};
        let w = Tensor::from_vec(Shape::new(3, 2, 3, 3), wv);
        let float = ops::conv2d(&x, &w, None, 1, 1, 1);
        let q = qconv2d(&QTensor::quantize(&x), &QTensor::quantize(&w), None, 1, 1, 1);
        // bound: #taps * (x_step*|w|max + w_step*|x|max) with margin
        let taps = 2.0 * 9.0;
        let bound = taps * (x.max_abs() / 127.0 * 0.5 + 0.5 / 127.0 * x.max_abs()) + 0.05;
        prop_assert!(float.sub(&q).max_abs() < bound.max(0.1));
    }

    /// Quantise → dequantise reproduces every element within half a
    /// quantisation step.
    #[test]
    fn quantize_roundtrip_error_is_at_most_half_a_step(x in tensor_strategy(1, 3, 5, 4)) {
        use eyecod_tensor::quant::QTensor;
        let q = QTensor::quantize(&x);
        let back = q.dequantize();
        let half_step = q.scale() / 2.0 + 1e-6;
        prop_assert!(
            x.sub(&back).max_abs() <= half_step,
            "roundtrip error {} exceeds half-step {half_step}",
            x.sub(&back).max_abs()
        );
    }

    /// Quantising with a too-small scale saturates at ±127 — values clamp,
    /// they never wrap around the int8 range.
    #[test]
    fn quantize_with_small_scale_saturates(
        x in tensor_strategy(1, 2, 4, 4),
        scale in 1e-4f32..1e-1,
    ) {
        use eyecod_tensor::quant::QTensor;
        let q = QTensor::quantize_with_scale(&x, scale);
        for (&code, &v) in q.as_i8().iter().zip(x.as_slice()) {
            prop_assert!((-127..=127).contains(&(code as i32)));
            // saturation direction must match the sign of the input
            if v > scale * 127.5 {
                prop_assert_eq!(code, 127);
            }
            if v < -scale * 127.5 {
                prop_assert_eq!(code, -127);
            }
        }
    }

    /// An all-zero tensor round-trips exactly regardless of the scale in
    /// force (and the auto-calibrated scale stays positive).
    #[test]
    fn all_zero_tensor_roundtrips_exactly(scale in 1e-6f32..10.0) {
        use eyecod_tensor::quant::QTensor;
        let x = Tensor::zeros(Shape::new(1, 2, 3, 3));
        let auto = QTensor::quantize(&x);
        prop_assert!(auto.scale() > 0.0);
        prop_assert!(auto.dequantize().max_abs() == 0.0);
        let forced = QTensor::quantize_with_scale(&x, scale);
        prop_assert!(forced.dequantize().max_abs() == 0.0);
    }
}
