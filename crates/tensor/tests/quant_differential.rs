//! Differential harness for the int8 convolution: `qconv2d` against
//! `conv2d` on *fake-quantised* operands — the f32 tensors obtained by
//! quantise→dequantise, on which the integer kernel's result is
//! mathematically `scale_x · scale_w · Σ(q_x · q_w)`, i.e. identical to the
//! float convolution up to f32 rounding. The sweep covers the geometry grid
//! the gaze network actually exercises: unit and larger strides, zero and
//! non-zero padding, dense, grouped and depth-wise channel wiring.

use eyecod_tensor::ops;
use eyecod_tensor::quant::{qconv2d, qconv2d_reference, QTensor};
use eyecod_tensor::{Shape, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_tensor(shape: Shape, rng: &mut StdRng) -> Tensor {
    Tensor::from_fn(shape, |_, _, _, _| rng.gen_range(-1.5..1.5))
}

/// Quantise → dequantise, returning both the fake-quantised f32 tensor and
/// the quantised codes that produced it.
fn fake_quantize(t: &Tensor) -> (Tensor, QTensor) {
    let q = QTensor::quantize(t);
    (q.dequantize(), q)
}

/// One differential case: conv geometry + operand shapes.
struct Geometry {
    name: &'static str,
    input: Shape,
    weight: Shape,
    stride: usize,
    pad: usize,
    groups: usize,
}

/// The geometry grid the gaze network actually exercises.
fn geometries() -> [Geometry; 7] {
    [
        Geometry {
            name: "dense 3x3, stride 1, pad 1 (stem conv)",
            input: Shape::new(1, 1, 12, 16),
            weight: Shape::new(8, 1, 3, 3),
            stride: 1,
            pad: 1,
            groups: 1,
        },
        Geometry {
            name: "dense 3x3, stride 2, pad 1 (downsampling stem)",
            input: Shape::new(2, 3, 11, 9),
            weight: Shape::new(6, 3, 3, 3),
            stride: 2,
            pad: 1,
            groups: 1,
        },
        Geometry {
            name: "pointwise 1x1, stride 1, pad 0",
            input: Shape::new(1, 8, 6, 10),
            weight: Shape::new(12, 8, 1, 1),
            stride: 1,
            pad: 0,
            groups: 1,
        },
        Geometry {
            name: "grouped 3x3 (2 groups), stride 1, pad 1",
            input: Shape::new(1, 8, 7, 7),
            weight: Shape::new(8, 4, 3, 3),
            stride: 1,
            pad: 1,
            groups: 2,
        },
        Geometry {
            name: "depth-wise 3x3, stride 1, pad 1",
            input: Shape::new(1, 8, 9, 13),
            weight: Shape::new(8, 1, 3, 3),
            stride: 1,
            pad: 1,
            groups: 8,
        },
        Geometry {
            name: "depth-wise 3x3, stride 2, pad 0 (edge-dropping)",
            input: Shape::new(2, 6, 10, 10),
            weight: Shape::new(6, 1, 3, 3),
            stride: 2,
            pad: 0,
            groups: 6,
        },
        Geometry {
            name: "depth-wise 5x5, stride 1, pad 2",
            input: Shape::new(1, 4, 8, 8),
            weight: Shape::new(4, 1, 5, 5),
            stride: 1,
            pad: 2,
            groups: 4,
        },
    ]
}

#[test]
fn qconv2d_matches_conv2d_on_fake_quantized_operands_across_geometries() {
    let mut rng = StdRng::seed_from_u64(0xD1FF);
    for (i, g) in geometries().iter().enumerate() {
        let x = random_tensor(g.input, &mut rng);
        let w = random_tensor(g.weight, &mut rng);
        let bias: Vec<f32> = (0..g.weight.n).map(|_| rng.gen_range(-0.5..0.5)).collect();
        let (x_fq, qx) = fake_quantize(&x);
        let (w_fq, qw) = fake_quantize(&w);

        let float = ops::conv2d(&x_fq, &w_fq, Some(&bias), g.stride, g.pad, g.groups);
        let int = qconv2d(&qx, &qw, Some(&bias), g.stride, g.pad, g.groups);

        assert_eq!(int.shape(), float.shape(), "case {i} ({}): shape", g.name);
        // the two computations differ only by f32 rounding of the rescale;
        // accumulations here are tiny (≤ 4·25 taps), so the gap is minute
        let diff = float.sub(&int).max_abs();
        assert!(
            diff < 1e-3,
            "case {i} ({}): int8 diverged from fake-quantised f32 by {diff}",
            g.name
        );
    }
}

#[test]
fn dispatched_qconv2d_is_bit_identical_to_reference_across_geometries() {
    // the same 7-geometry sweep, but comparing the runtime-dispatched int8
    // kernel against the pinned-scalar reference: integer i32 accumulation
    // is exact, so whichever path dispatch picks in this process (AVX2 or
    // scalar, depending on the host and EYECOD_NO_SIMD) the results must
    // agree bit for bit — `==`, not a tolerance
    let mut rng = StdRng::seed_from_u64(0x51D);
    for (i, g) in geometries().iter().enumerate() {
        let qx = QTensor::quantize(&random_tensor(g.input, &mut rng));
        let qw = QTensor::quantize(&random_tensor(g.weight, &mut rng));
        let bias: Vec<f32> = (0..g.weight.n).map(|_| rng.gen_range(-0.5..0.5)).collect();
        let fast = qconv2d(&qx, &qw, Some(&bias), g.stride, g.pad, g.groups);
        let reference = qconv2d_reference(&qx, &qw, Some(&bias), g.stride, g.pad, g.groups);
        assert_eq!(
            fast.shape(),
            reference.shape(),
            "case {i} ({}): shape",
            g.name
        );
        assert_eq!(
            fast.as_slice(),
            reference.as_slice(),
            "case {i} ({}): dispatched kernel diverged from scalar reference",
            g.name
        );
    }
}

#[test]
fn qconv2d_against_unquantized_conv_stays_within_the_step_bound() {
    // against the *original* f32 operands the divergence is bounded by the
    // accumulated quantisation steps — the coarse contract the per-layer
    // harness in eyecod-models builds on
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    let x = random_tensor(Shape::new(1, 4, 10, 10), &mut rng);
    let w = random_tensor(Shape::new(8, 4, 3, 3), &mut rng);
    let float = ops::conv2d(&x, &w, None, 1, 1, 1);
    let int = qconv2d(
        &QTensor::quantize(&x),
        &QTensor::quantize(&w),
        None,
        1,
        1,
        1,
    );
    let taps = (4 * 3 * 3) as f32;
    let bound = taps * (x.max_abs() / 127.0 * w.max_abs() + w.max_abs() / 127.0 * x.max_abs());
    assert!(
        float.sub(&int).max_abs() <= bound,
        "divergence {} above step bound {bound}",
        float.sub(&int).max_abs()
    );
}
