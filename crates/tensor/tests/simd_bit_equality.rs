//! SIMD-vs-scalar bit-equality properties.
//!
//! The dispatch contract of `eyecod_tensor::simd` is that the AVX2 kernels
//! are **bit-identical** to their scalar references — int8 ops because i32
//! accumulation of i8·i8 products is exact integer arithmetic (associative,
//! no rounding), the f32 GEMM because both instantiations execute the same
//! IEEE mul-then-add sequence. These properties hammer the nasty geometries
//! where a tiling bug would hide: reduction lengths that are not multiples
//! of the 32/16-lane tile widths, unaligned remainder columns, saturating
//! ±127 codes (the `maddubs` i16-overflow trap the sign-split trick must
//! defuse), and grouped/depth-wise channel wiring.
//!
//! CI runs this suite twice — with SIMD enabled and under
//! `EYECOD_NO_SIMD=1` — so both sides of every dispatch point are covered
//! even on hosts where one test process can only ever observe one probe
//! result (the probe is cached per process).

use eyecod_tensor::ops::{conv2d_gemm, conv2d_gemm_reference};
use eyecod_tensor::quant::{
    qconv2d, qconv2d_reference, qconv2d_requant, qconv2d_requant_reference, qlinear,
    qlinear_reference, QTensor,
};
use eyecod_tensor::{simd, Shape, Tensor};
use proptest::prelude::*;

/// A tensor whose quantised codes are exactly the sampled i8 values:
/// `quantize_with_scale` with scale 1.0 rounds `code as f32` back to `code`.
/// Sampling the full ±127 range (inclusive) keeps the saturating extremes
/// in play.
fn qtensor_strategy(shape: Shape) -> impl Strategy<Value = QTensor> {
    proptest::collection::vec(-127i32..=127, shape.len())
        .prop_map(move |v| Tensor::from_vec(shape, v.into_iter().map(|c| c as f32).collect()))
        .prop_map(|t| QTensor::quantize_with_scale(&t, 1.0))
}

/// All-extreme codes: every element is ±127, the worst case for the
/// pairwise i16 intermediate in `maddubs` (2 · 127² = 32258 < i16::MAX
/// only after the sign-split rewrite).
fn saturating_qtensor_strategy(shape: Shape) -> impl Strategy<Value = QTensor> {
    proptest::collection::vec(0u8..2, shape.len())
        .prop_map(move |signs| {
            Tensor::from_vec(
                shape,
                signs
                    .into_iter()
                    .map(|s| if s != 0 { 127.0 } else { -127.0 })
                    .collect(),
            )
        })
        .prop_map(|t| QTensor::quantize_with_scale(&t, 1.0))
}

fn i8_vec(len: usize) -> impl Strategy<Value = Vec<i8>> {
    proptest::collection::vec(-127i8..=127, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `qdot_i8` == scalar across lengths straddling the 32-lane tile
    /// (0, partial tile, exact tiles, tiles + remainder).
    #[test]
    fn qdot_matches_scalar(len in 0usize..200, x in i8_vec(200), w in i8_vec(200)) {
        prop_assert_eq!(
            simd::qdot_i8(&x[..len], &w[..len]),
            simd::qdot_i8_scalar(&x[..len], &w[..len])
        );
    }

    /// `qdot_i8` == scalar on fully saturating ±127 operands — the i16
    /// overflow trap.
    #[test]
    fn qdot_matches_scalar_at_saturation(
        len in 1usize..200,
        xsigns in proptest::collection::vec(0u8..2, 200),
        wsigns in proptest::collection::vec(0u8..2, 200),
    ) {
        let xs: Vec<i8> = xsigns[..len].iter().map(|&s| if s != 0 { 127 } else { -127 }).collect();
        let ws: Vec<i8> = wsigns[..len].iter().map(|&s| if s != 0 { 127 } else { -127 }).collect();
        prop_assert_eq!(simd::qdot_i8(&xs, &ws), simd::qdot_i8_scalar(&xs, &ws));
    }

    /// The 4-row dot tile equals four independent scalar dots.
    #[test]
    fn qdot4_matches_scalar_rows(
        len in 0usize..130,
        x in proptest::collection::vec(-127i8..=127, 130),
        w in proptest::collection::vec(-127i8..=127, 4 * 130),
    ) {
        let x = &x[..len];
        let rows = [&w[..len], &w[130..130 + len], &w[260..260 + len], &w[390..390 + len]];
        let got = simd::qdot4_i8(x, rows);
        for (i, r) in rows.iter().enumerate() {
            prop_assert_eq!(got[i], simd::qdot_i8_scalar(x, r), "row {}", i);
        }
    }

    /// `qaxpy_i8` == scalar, including saturating weights and unaligned
    /// remainder lanes past the 16-wide tile.
    #[test]
    fn qaxpy_matches_scalar(
        len in 0usize..100,
        x in proptest::collection::vec(-127i8..=127, 100),
        acc0 in proptest::collection::vec(-100_000i32..100_000, 100),
        w in -127i32..=127,
    ) {
        let mut simd_row = acc0[..len].to_vec();
        let mut scalar_row = acc0[..len].to_vec();
        simd::qaxpy_i8(&mut simd_row, &x[..len], w);
        simd::qaxpy_i8_scalar(&mut scalar_row, &x[..len], w);
        prop_assert_eq!(simd_row, scalar_row);
    }

    /// Dispatched `qconv2d` is bit-identical to the scalar reference across
    /// random geometry: stride 1–2, pad 0–2, dense and grouped wiring, and
    /// widths chosen to leave unaligned remainder columns.
    #[test]
    fn qconv2d_dispatch_is_bit_identical(
        qx in qtensor_strategy(Shape::new(1, 4, 7, 19)),
        qw in qtensor_strategy(Shape::new(6, 2, 3, 3)),
        stride in 1usize..3,
        pad in 0usize..3,
    ) {
        let a = qconv2d(&qx, &qw, None, stride, pad, 2);
        let b = qconv2d_reference(&qx, &qw, None, stride, pad, 2);
        prop_assert_eq!(a.shape(), b.shape());
        prop_assert_eq!(a.as_slice(), b.as_slice());
    }

    /// Depth-wise `qconv2d` (one tap stream per channel) under both
    /// dispatch modes, on saturating ±127 codes.
    #[test]
    fn depthwise_qconv2d_is_bit_identical_at_saturation(
        qx in saturating_qtensor_strategy(Shape::new(1, 6, 9, 17)),
        qw in saturating_qtensor_strategy(Shape::new(6, 1, 3, 3)),
        stride in 1usize..3,
    ) {
        let a = qconv2d(&qx, &qw, None, stride, 1, 6);
        let b = qconv2d_reference(&qx, &qw, None, stride, 1, 6);
        prop_assert_eq!(a.as_slice(), b.as_slice());
    }

    /// The fused requantising conv keeps bit-identity through the i32 →
    /// rescale → i8 tail (same accumulators in, same f32 rescale out).
    #[test]
    fn qconv2d_requant_dispatch_is_bit_identical(
        qx in qtensor_strategy(Shape::new(1, 3, 8, 13)),
        qw in qtensor_strategy(Shape::new(4, 3, 3, 3)),
        bias in proptest::collection::vec(-1.0f32..1.0, 4),
        relu in 0u8..2,
    ) {
        let relu = relu != 0;
        let a = qconv2d_requant(&qx, &qw, Some(&bias), 1, 1, 1, relu, 0.05);
        let b = qconv2d_requant_reference(&qx, &qw, Some(&bias), 1, 1, 1, relu, 0.05);
        prop_assert_eq!(a.as_i8(), b.as_i8());
    }

    /// `qlinear` bit-identity over K values that straddle the 32-lane dot
    /// tile and the 4-row output tile (out = 5 leaves a remainder row).
    #[test]
    fn qlinear_dispatch_is_bit_identical(
        k in 1usize..100,
        xcodes in proptest::collection::vec(-127i32..=127, 2 * 100),
        wcodes in proptest::collection::vec(-127i32..=127, 5 * 100),
        bias in proptest::collection::vec(-1.0f32..1.0, 5),
    ) {
        let x = Tensor::from_vec(
            Shape::new(2, 1, 1, k),
            xcodes[..2 * k].iter().map(|&c| c as f32).collect(),
        );
        let w = Tensor::from_vec(
            Shape::new(5, 1, 1, k),
            wcodes[..5 * k].iter().map(|&c| c as f32).collect(),
        );
        let qx = QTensor::quantize_with_scale(&x, 1.0);
        let qw = QTensor::quantize_with_scale(&w, 1.0);
        let a = qlinear(&qx, &qw, Some(&bias));
        let b = qlinear_reference(&qx, &qw, Some(&bias));
        prop_assert_eq!(a.as_slice(), b.as_slice());
    }

    /// The f32 im2col GEMM is bit-identical between the AVX2 and scalar
    /// instantiations — same IEEE operation sequence, no FMA contraction.
    #[test]
    fn f32_gemm_dispatch_is_bit_identical(
        xv in proptest::collection::vec(-2.0f32..2.0, 4 * 9 * 11),
        wv in proptest::collection::vec(-1.0f32..1.0, 6 * 2 * 3 * 3),
        bias in proptest::collection::vec(-0.5f32..0.5, 6),
        stride in 1usize..3,
        pad in 0usize..2,
    ) {
        let x = Tensor::from_vec(Shape::new(1, 4, 9, 11), xv);
        let w = Tensor::from_vec(Shape::new(6, 2, 3, 3), wv);
        let a = conv2d_gemm(&x, &w, Some(&bias), stride, pad.max(1), 2);
        let b = conv2d_gemm_reference(&x, &w, Some(&bias), stride, pad.max(1), 2);
        prop_assert_eq!(a.as_slice(), b.as_slice());
    }
}

/// Deterministic (non-proptest) record of which dispatch mode this process
/// observed — makes `cargo test` output self-describing in the CI matrix.
#[test]
fn report_dispatch_mode() {
    eprintln!(
        "simd_bit_equality: avx2_supported={} simd_enabled={}",
        simd::avx2_supported(),
        simd::avx2_enabled()
    );
}
