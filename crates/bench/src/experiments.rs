//! Experiment implementations, one per paper table/figure.
//!
//! Every function returns typed, serialisable rows; the criterion benches
//! and the `report` binary print them. `Scale::Quick` keeps each experiment
//! in seconds (CI-friendly); `Scale::Standard` uses larger training/eval
//! budgets for the recorded EXPERIMENTS.md numbers.
//!
//! Accuracy numbers come from proxy networks trained on the synthetic eye
//! dataset (see DESIGN.md §2 for why, and what is preserved); FLOPs/params
//! columns come from the exact full-size model specs; throughput/energy
//! come from the cycle-level accelerator simulator and platform models.

use eyecod_accel::config::AcceleratorConfig;
use eyecod_accel::schedule::{Orchestration, WindowSimulator};
use eyecod_accel::storage::{partitioned_activation_bytes, peak_activation_bytes};
use eyecod_accel::swpr::peak_bandwidth_rows_per_cycle;
use eyecod_accel::trace::UtilizationTrace;
use eyecod_accel::workload::EyeCodWorkload;
use eyecod_core::acquisition::Acquisition;
use eyecod_core::roi::{crop_by_strategy, predict_roi, CropStrategy};
use eyecod_core::tracker::{EyeTracker, GazeBackend, TrackerConfig};
use eyecod_core::training::{downsample_labels, train_tracker_models, TrainingSetup};
use eyecod_eyedata::labels::mean_iou;
use eyecod_eyedata::render::{render_eye, EyeParams};
use eyecod_eyedata::{EyeMotionGenerator, GazeVector};
use eyecod_models::proxy::{
    eval_gaze, predict_seg, quantize_params_int8, train_gaze, train_seg, GazeFamily, ProxyGazeNet,
    ProxySegNet, TrainConfig,
};
use eyecod_models::{fbnet, mobilenet, resnet, ritnet, unet};
use eyecod_platforms::system::{compare_all, PlatformResult};
use eyecod_pool::BatchRunner;
use eyecod_tensor::ops::{downsample_avg, resize_bilinear};
use eyecod_tensor::{Layer, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

/// Experiment budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds per experiment (tests, criterion setup).
    Quick,
    /// Minutes per experiment (recorded EXPERIMENTS.md numbers).
    Standard,
}

impl Scale {
    fn training(self) -> TrainingSetup {
        match self {
            Scale::Quick => TrainingSetup::quick(),
            Scale::Standard => TrainingSetup::standard(),
        }
    }

    fn eval_samples(self) -> usize {
        match self {
            Scale::Quick => 24,
            Scale::Standard => 96,
        }
    }

    fn seq_frames(self) -> usize {
        match self {
            Scale::Quick => 60,
            Scale::Standard => 300,
        }
    }
}

// ---------------------------------------------------------------------------
// Table 2 — gaze estimation models
// ---------------------------------------------------------------------------

/// One Table 2 row.
#[derive(Debug, Clone, Serialize)]
pub struct GazeModelRow {
    /// Model label.
    pub model: String,
    /// Camera ("Lens" / "FlatCam").
    pub camera: String,
    /// Input described as in the paper (full frame vs ROI).
    pub resolution: String,
    /// Measured proxy gaze error in degrees.
    pub error_deg: f32,
    /// Full-size model parameters (from the exact spec).
    pub params_m: f64,
    /// Full-size model FLOPs in G (paper convention, at the paper's input).
    pub flops_g: f64,
}

fn eval_gaze_setup(
    family: GazeFamily,
    flatcam: bool,
    use_roi: bool,
    int8: bool,
    scale: Scale,
) -> f32 {
    let config = if flatcam {
        TrackerConfig::small()
    } else {
        TrackerConfig::small_lens()
    };
    let setup = scale.training().with_gaze_family(family);
    let scene = config.scene_size;
    let factor = scene / config.seg_size;

    // Train on the configured acquisition. For the no-ROI setting the gaze
    // network sees the resized full frame instead of the crop.
    let mut gaze = if use_roi {
        train_tracker_models(&setup, &config).gaze
    } else {
        let acquisition = acquisition_for(&config);
        let mut rng = StdRng::seed_from_u64(setup.seed);
        let mut images = Vec::new();
        let mut gazes = Vec::new();
        for i in 0..setup.n_samples {
            let p = EyeParams::random(&mut rng);
            let s = render_eye(&p, scene, i as u64);
            let img = acquisition.acquire(&s.image, i as u64 + 1);
            images.push(resize_bilinear(
                &img,
                config.gaze_input.0,
                config.gaze_input.1,
            ));
            gazes.push(GazeVector::batch_to_tensor(&[s.gaze]));
        }
        let images = Tensor::stack(&images);
        let gazes = Tensor::stack(&gazes);
        let mut net = ProxyGazeNet::new(family, &mut rng);
        train_gaze(
            &mut net,
            &images,
            &gazes,
            &TrainConfig {
                epochs: setup.gaze_epochs,
                batch: setup.batch,
                lr: setup.gaze_lr,
                seed: setup.seed,
            },
        );
        net
    };
    if int8 {
        quantize_params_int8(&mut gaze);
    }

    // Held-out evaluation with ground-truth-anchored ROIs (isolates the
    // gaze model, as Table 2 does).
    let acquisition = acquisition_for(&config);
    let mut rng = StdRng::seed_from_u64(777);
    let mut crops = Vec::new();
    let mut gazes = Vec::new();
    for i in 0..scale.eval_samples() {
        let p = EyeParams::random(&mut rng);
        let s = render_eye(&p, scene, 50_000 + i as u64);
        let img = acquisition.acquire(&s.image, 60_000 + i as u64);
        let input = if use_roi {
            let labels_seg = downsample_labels(&s.labels, scene, factor);
            let mut roi = predict_roi(
                &labels_seg,
                config.seg_size,
                (config.roi.0 / factor).max(2),
                (config.roi.1 / factor).max(2),
            )
            .rescale(config.seg_size, scene);
            roi.h = config.roi.0;
            roi.w = config.roi.1;
            roi.y0 = roi.y0.min(scene - roi.h);
            roi.x0 = roi.x0.min(scene - roi.w);
            roi.crop(&img)
        } else {
            img
        };
        crops.push(resize_bilinear(
            &input,
            config.gaze_input.0,
            config.gaze_input.1,
        ));
        gazes.push(GazeVector::batch_to_tensor(&[s.gaze]));
    }
    eval_gaze(&mut gaze, &Tensor::stack(&crops), &Tensor::stack(&gazes))
}

fn acquisition_for(config: &TrackerConfig) -> Acquisition {
    if config.flatcam {
        Acquisition::flatcam(
            config.scene_size,
            config.sensor_size,
            config.epsilon,
            config.mask_seed,
        )
    } else {
        Acquisition::lens()
    }
}

/// One Table 2 training/eval case.
struct GazeCase {
    model: &'static str,
    camera: &'static str,
    resolution: &'static str,
    family: GazeFamily,
    flatcam: bool,
    use_roi: bool,
    int8: bool,
    params_m: f64,
    flops_g: f64,
}

/// Regenerates Table 2: gaze models on lens full-frame vs FlatCam ROI.
///
/// Each row trains its own gaze network, so the sweep runs on the
/// process-wide pool through [`BatchRunner`] (bounded in-flight training
/// state, results in row order).
pub fn table2_gaze_models(scale: Scale) -> Vec<GazeModelRow> {
    let cases = [
        // ResNet18 on the lens camera, full frame (the OpenEDS2020 winner
        // row)
        GazeCase {
            model: "ResNet18",
            camera: "Lens",
            resolution: "full frame",
            family: GazeFamily::ResNetLike,
            flatcam: false,
            use_roi: false,
            int8: false,
            params_m: resnet::spec(224, 224).params() as f64 / 1e6,
            flops_g: resnet::spec(224, 224).flops() as f64 / 1e9,
        },
        // Lens + ROI control: isolates the FlatCam-optics effect (the
        // paper's claim that the FlatCam system does not degrade accuracy
        // is the small gap between this row and the FlatCam ResNet18 row)
        GazeCase {
            model: "ResNet18",
            camera: "Lens",
            resolution: "ROI",
            family: GazeFamily::ResNetLike,
            flatcam: false,
            use_roi: true,
            int8: false,
            params_m: resnet::spec(96, 160).params() as f64 / 1e6,
            flops_g: resnet::spec(96, 160).flops() as f64 / 1e9,
        },
        // FlatCam + ROI rows
        GazeCase {
            model: "ResNet18",
            camera: "FlatCam",
            resolution: "ROI",
            family: GazeFamily::ResNetLike,
            flatcam: true,
            use_roi: true,
            int8: false,
            params_m: resnet::spec(96, 160).params() as f64 / 1e6,
            flops_g: resnet::spec(96, 160).flops() as f64 / 1e9,
        },
        GazeCase {
            model: "MobileNet",
            camera: "FlatCam",
            resolution: "ROI",
            family: GazeFamily::MobileNetLike,
            flatcam: true,
            use_roi: true,
            int8: false,
            params_m: mobilenet::spec(96, 160).params() as f64 / 1e6,
            flops_g: mobilenet::spec(96, 160).flops() as f64 / 1e9,
        },
        GazeCase {
            model: "FBNet-C100",
            camera: "FlatCam",
            resolution: "ROI",
            family: GazeFamily::FbnetLike,
            flatcam: true,
            use_roi: true,
            int8: false,
            params_m: fbnet::spec(96, 160).params() as f64 / 1e6,
            flops_g: fbnet::spec(96, 160).flops() as f64 / 1e9,
        },
        // 8-bit FBNet
        GazeCase {
            model: "FBNet-C100 (8-bit)",
            camera: "FlatCam",
            resolution: "ROI",
            family: GazeFamily::FbnetLike,
            flatcam: true,
            use_roi: true,
            int8: true,
            params_m: fbnet::spec(96, 160).params() as f64 / 1e6,
            flops_g: fbnet::spec(96, 160).effective_flops(8) as f64 / 1e9,
        },
    ];
    BatchRunner::on_global().run(&cases, |case| GazeModelRow {
        model: case.model.into(),
        camera: case.camera.into(),
        resolution: case.resolution.into(),
        error_deg: eval_gaze_setup(case.family, case.flatcam, case.use_roi, case.int8, scale),
        params_m: case.params_m,
        flops_g: case.flops_g,
    })
}

// ---------------------------------------------------------------------------
// Table 3 — segmentation vs resolution / precision / camera
// ---------------------------------------------------------------------------

/// One Table 3 row.
#[derive(Debug, Clone, Serialize)]
pub struct SegmentationRow {
    /// Model label.
    pub model: String,
    /// Proxy input resolution (scene-relative; the paper's 512/256/128
    /// ladder maps to 48/24/12 at our scene scale).
    pub resolution: usize,
    /// Whether parameters were quantised to int8.
    pub int8: bool,
    /// mIOU on lens ("origin") images.
    pub miou_origin: f32,
    /// mIOU on FlatCam reconstructions.
    pub miou_flatcam: f32,
    /// Full-size model FLOPs in G at the corresponding paper resolution.
    pub flops_g: f64,
}

/// Trains segmentation proxies of the given width at the given proxy
/// resolution and evaluates mIOU **at the scene resolution** (predictions
/// are upsampled back, so dropping small structures at low resolution is
/// penalised exactly as it would be in deployment). Averages over a couple
/// of training seeds to tame small-budget variance. Returns
/// `(fp32_miou, int8_miou)`.
fn train_eval_seg_width(res: usize, flatcam: bool, width: usize, scale: Scale) -> (f32, f32) {
    let config = TrackerConfig::small();
    let scene = config.scene_size;
    let acquisition = if flatcam {
        acquisition_for(&config)
    } else {
        Acquisition::lens()
    };
    let setup = scale.training();
    let factor = scene / res;
    let seeds: &[u64] = match scale {
        Scale::Quick => &[1, 2],
        Scale::Standard => &[1, 2, 3],
    };

    let mut fp32_sum = 0.0f32;
    let mut int8_sum = 0.0f32;
    for &seed in seeds {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut images = Vec::new();
        let mut labels: Vec<usize> = Vec::new();
        for i in 0..setup.n_samples {
            let p = EyeParams::random(&mut rng);
            let s = render_eye(&p, scene, i as u64);
            let img = acquisition.acquire(&s.image, i as u64 + 7);
            images.push(downsample_avg(&img, factor));
            labels.extend(
                downsample_labels(&s.labels, scene, factor)
                    .into_iter()
                    .map(|v| v as usize),
            );
        }
        let images = Tensor::stack(&images);
        let mut net = ProxySegNet::new(width, &mut rng);
        train_seg(
            &mut net,
            &images,
            &labels,
            &TrainConfig {
                epochs: setup.seg_epochs * 2,
                batch: setup.batch,
                lr: setup.seg_lr,
                seed,
            },
        );

        // held-out eval at scene resolution (upsampled predictions)
        let eval = |net: &mut ProxySegNet| {
            let mut rng = StdRng::seed_from_u64(4242);
            let mut miou_sum = 0.0f32;
            let n_eval = scale.eval_samples();
            for i in 0..n_eval {
                let p = EyeParams::random(&mut rng);
                let s = render_eye(&p, scene, 90_000 + i as u64);
                let img = acquisition.acquire(&s.image, 91_000 + i as u64);
                let pred = predict_seg(net, &downsample_avg(&img, factor));
                // nearest-neighbour upsample of the label map back to scene res
                let mut pred_full = vec![0u8; scene * scene];
                for y in 0..scene {
                    for x in 0..scene {
                        pred_full[y * scene + x] = pred[(y / factor) * res + x / factor];
                    }
                }
                miou_sum += mean_iou(&pred_full, &s.labels);
            }
            miou_sum / n_eval as f32
        };
        fp32_sum += eval(&mut net);
        quantize_params_int8(&mut net);
        int8_sum += eval(&mut net);
    }
    (fp32_sum / seeds.len() as f32, int8_sum / seeds.len() as f32)
}

/// Regenerates Table 3: segmentation mIOU across resolution, precision and
/// camera. Our scene scale is 48, so the paper's 512/256/128 ladder maps to
/// proxy resolutions 48/24/12 with the full-spec FLOPs column carrying the
/// paper-scale numbers.
pub fn table3_segmentation(scale: Scale) -> Vec<SegmentationRow> {
    let mut rows = Vec::new();
    // U-Net baseline at full resolution (a slimmer member of the family)
    let (unet_origin, _) = train_eval_seg_width(48, false, 6, scale);
    let (unet_flat, _) = train_eval_seg_width(48, true, 6, scale);
    rows.push(SegmentationRow {
        model: "U-Net".into(),
        resolution: 48,
        int8: false,
        miou_origin: unet_origin,
        miou_flatcam: unet_flat,
        flops_g: unet::spec(512).flops() as f64 / 1e9,
    });
    for (res, paper_res) in [(48usize, 512usize), (24, 256), (12, 128)] {
        let (origin_fp32, origin_int8) = train_eval_seg_width(res, false, 8, scale);
        let (flat_fp32, flat_int8) = train_eval_seg_width(res, true, 8, scale);
        rows.push(SegmentationRow {
            model: "RITNet".into(),
            resolution: res,
            int8: false,
            miou_origin: origin_fp32,
            miou_flatcam: flat_fp32,
            flops_g: ritnet::spec(paper_res).flops() as f64 / 1e9,
        });
        // the paper reports the 8-bit rows at 256/128 only
        if res != 48 {
            rows.push(SegmentationRow {
                model: "RITNet (8-bit)".into(),
                resolution: res,
                int8: true,
                miou_origin: origin_int8,
                miou_flatcam: flat_int8,
                flops_g: ritnet::spec(paper_res).effective_flops(8) as f64 / 1e9,
            });
        }
    }
    rows
}

// ---------------------------------------------------------------------------
// Table 4 — crop strategy ablation
// ---------------------------------------------------------------------------

/// One Table 4 row.
#[derive(Debug, Clone, Serialize)]
pub struct CropRow {
    /// Strategy label.
    pub strategy: String,
    /// Measured gaze error in degrees.
    pub error_deg: f32,
}

/// Regenerates Table 4: gaze error when the gaze model consumes random,
/// central, or pupil-anchored crops (trained and evaluated consistently per
/// strategy).
pub fn table4_roi_ablation(scale: Scale) -> Vec<CropRow> {
    let config = TrackerConfig::small();
    let scene = config.scene_size;
    let factor = scene / config.seg_size;
    let setup = scale.training();
    let acquisition = acquisition_for(&config);
    let strategies = [
        ("Random Crop", CropStrategy::Random),
        ("Central Crop", CropStrategy::Central),
        ("ROI (Ours)", CropStrategy::PupilAnchored),
    ];
    strategies
        .iter()
        .map(|(label, strategy)| {
            let mut rng = StdRng::seed_from_u64(setup.seed);
            let mut crop_rng = StdRng::seed_from_u64(31);
            let mut crops = Vec::new();
            let mut gazes = Vec::new();
            let make_input = |s: &eyecod_eyedata::Sample, img: &Tensor, crop_rng: &mut StdRng| {
                let labels_seg = downsample_labels(&s.labels, scene, factor);
                let mut roi = crop_by_strategy(
                    *strategy,
                    &labels_seg,
                    config.seg_size,
                    (config.roi.0 / factor).max(2),
                    (config.roi.1 / factor).max(2),
                    crop_rng,
                )
                .rescale(config.seg_size, scene);
                roi.h = config.roi.0;
                roi.w = config.roi.1;
                roi.y0 = roi.y0.min(scene - roi.h);
                roi.x0 = roi.x0.min(scene - roi.w);
                resize_bilinear(&roi.crop(img), config.gaze_input.0, config.gaze_input.1)
            };
            for i in 0..setup.n_samples {
                let p = EyeParams::random(&mut rng);
                let s = render_eye(&p, scene, i as u64);
                let img = acquisition.acquire(&s.image, i as u64 + 3);
                crops.push(make_input(&s, &img, &mut crop_rng));
                gazes.push(GazeVector::batch_to_tensor(&[s.gaze]));
            }
            let mut net = ProxyGazeNet::new(setup.gaze_family, &mut rng);
            train_gaze(
                &mut net,
                &Tensor::stack(&crops),
                &Tensor::stack(&gazes),
                &TrainConfig {
                    epochs: setup.gaze_epochs,
                    batch: setup.batch,
                    lr: setup.gaze_lr,
                    seed: setup.seed,
                },
            );
            // held-out eval with the same strategy
            let mut rng = StdRng::seed_from_u64(555);
            let mut crops = Vec::new();
            let mut gazes = Vec::new();
            for i in 0..scale.eval_samples() {
                let p = EyeParams::random(&mut rng);
                let s = render_eye(&p, scene, 70_000 + i as u64);
                let img = acquisition.acquire(&s.image, 71_000 + i as u64);
                crops.push(make_input(&s, &img, &mut crop_rng));
                gazes.push(GazeVector::batch_to_tensor(&[s.gaze]));
            }
            CropRow {
                strategy: (*label).into(),
                error_deg: eval_gaze(&mut net, &Tensor::stack(&crops), &Tensor::stack(&gazes)),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Table 5 — ROI frequency and size ablation
// ---------------------------------------------------------------------------

/// One Table 5 row.
#[derive(Debug, Clone, Serialize)]
pub struct RoiFreqRow {
    /// Frames between ROI refreshes.
    pub roi_period: usize,
    /// ROI size at our scene scale.
    pub roi_size: String,
    /// The corresponding paper-scale ROI.
    pub paper_roi: String,
    /// Measured tracking error over a motion sequence (degrees).
    pub error_deg: f32,
    /// Gaze FLOPs per frame (full-size FBNet spec at the paper ROI), M.
    pub gaze_mflops_per_frame: f64,
    /// Segmentation FLOPs per frame (full-size RITNet spec amortised), M.
    pub seg_mflops_per_frame: f64,
}

/// Regenerates Table 5: sweep the ROI refresh period and the ROI size over
/// a live eye-motion sequence. (Our sequences drift faster than OpenEDS
/// footage, so the period ladder 5/10/20 plays the role of the paper's
/// 25/50/100.)
pub fn table5_roi_freq(scale: Scale) -> Vec<RoiFreqRow> {
    // size sweep at the default period, then period sweep at default size
    let size_cases = [
        ((16usize, 24usize), (48usize, 80usize)),
        ((24, 32), (96, 160)),
        ((32, 40), (144, 240)),
    ];
    let period_cases = [5usize, 10, 20];
    let default_size = ((24usize, 32usize), (96usize, 160usize));
    let default_period = 10usize;

    // (segmentation period, (functional ROI, paper-scale ROI))
    type RoiCase = (usize, ((usize, usize), (usize, usize)));
    let run_case = |&(period, (roi, paper_roi)): &RoiCase| {
        let mut config = TrackerConfig::small();
        config.roi = roi;
        config.roi_period = period;
        let models = train_tracker_models(&scale.training(), &config);
        let mut tracker = EyeTracker::new(config, models);
        // blink-free sequences (the paper's gaze evaluation uses valid
        // eye-open frames), averaged over several motion seeds — a single
        // trajectory's difficulty varies a lot at this scene scale
        let mut stats = eyecod_core::metrics::TrackingStats::new();
        for motion_seed in [2024u64, 31, 77, 113] {
            let motion_config = eyecod_eyedata::sequence::MotionConfig {
                blink_prob: 0.0,
                ..Default::default()
            };
            let mut rng = StdRng::seed_from_u64(motion_seed ^ 0x00EE_C0D0);
            let mut motion =
                EyeMotionGenerator::new(EyeParams::random(&mut rng), motion_config, motion_seed);
            stats.merge(&tracker.run_sequence(&mut motion, scale.seq_frames()));
        }
        let gaze_flops = fbnet::spec(paper_roi.0, paper_roi.1).flops() as f64 / 1e6;
        let seg_flops = ritnet::spec(128).flops() as f64 / 1e6 / (period as f64 * 5.0); // scaled to the paper's 25/50/100 ladder
        RoiFreqRow {
            roi_period: period,
            roi_size: format!("{}x{}", roi.0, roi.1),
            paper_roi: format!("{}x{}", paper_roi.0, paper_roi.1),
            error_deg: stats.mean_error_deg(),
            gaze_mflops_per_frame: gaze_flops,
            seg_mflops_per_frame: seg_flops,
        }
    };

    let mut cases: Vec<RoiCase> = Vec::new();
    for period in period_cases {
        if period != default_period {
            cases.push((period, default_size));
        }
    }
    for size in size_cases {
        cases.push((default_period, size));
    }
    // every case trains a tracker from scratch — run the sweep through the
    // pool-backed batch executor so training state stays bounded while all
    // cores contribute
    let mut rows = BatchRunner::on_global().run(&cases, run_case);
    rows.sort_by_key(|r| (r.roi_period, r.roi_size.clone()));
    rows
}

// ---------------------------------------------------------------------------
// Table 6 — accelerator feature ladder
// ---------------------------------------------------------------------------

/// One Table 6 row.
#[derive(Debug, Clone, Serialize)]
pub struct AccelAblationRow {
    /// System label.
    pub system: String,
    /// Simulated throughput in FPS.
    pub fps: f64,
    /// Energy efficiency normalised to the lens-based baseline.
    pub norm_energy_eff: f64,
    /// Average MAC utilisation.
    pub utilization: f64,
}

/// Regenerates Table 6: lens-based baseline → +predict-then-focus →
/// +SWPR input buffer → +partial time-multiplexing → +depth-wise reuse.
pub fn table6_accel_ablation() -> Vec<AccelAblationRow> {
    let base = AcceleratorConfig::ablation_baseline();
    let steps: Vec<(&str, bool, AcceleratorConfig)> = vec![
        ("Lens-based System", false, base.clone()),
        ("EyeCoD w/ P.F.", true, base.clone()),
        (
            "EyeCoD w/ P.F. & Input.",
            true,
            AcceleratorConfig {
                swpr_buffer: true,
                ..base.clone()
            },
        ),
        (
            "EyeCoD w/ P.F. & Input. & Partial.",
            true,
            AcceleratorConfig {
                swpr_buffer: true,
                orchestration: Orchestration::PartialTimeMultiplexed,
                ..base.clone()
            },
        ),
        (
            "EyeCoD w/ P.F. & Input. & Partial. & Depth.",
            true,
            AcceleratorConfig::paper_default(),
        ),
    ];
    let mut rows = Vec::new();
    let mut base_energy = None;
    for (label, pf, cfg) in steps {
        let workload = if pf {
            EyeCodWorkload::paper_default().into_workload()
        } else {
            EyeCodWorkload::lens_based().into_workload()
        };
        let r = WindowSimulator::new(cfg).run_window(&workload);
        let e = r.energy_per_frame_mj;
        let base_e = *base_energy.get_or_insert(e);
        rows.push(AccelAblationRow {
            system: label.into(),
            fps: r.fps,
            norm_energy_eff: base_e / e,
            utilization: r.avg_utilization,
        });
    }
    rows
}

// ---------------------------------------------------------------------------
// Fig. 7 — utilisation timeline; Fig. 14 — overall comparison
// ---------------------------------------------------------------------------

/// Regenerates the Fig. 7 series: `(time_us, utilization)` samples of one
/// frame's per-layer execution, plus summary statistics.
pub fn fig7_utilization(samples: usize) -> (Vec<(f64, f64)>, f64, f64) {
    let cfg = AcceleratorConfig::paper_default();
    let sim = WindowSimulator::new(cfg.clone());
    let r = sim.run_window(&EyeCodWorkload::paper_default().into_workload());
    let trace = UtilizationTrace::from_costs(&r.frame_costs, cfg.clock_mhz);
    (
        trace.resample(samples),
        trace.mean_utilization(),
        trace.fraction_below(0.8),
    )
}

/// Regenerates Fig. 14 (throughput + normalised energy efficiency).
pub fn fig14_overall() -> Vec<PlatformResult> {
    compare_all()
}

// ---------------------------------------------------------------------------
// Int8 deployed gaze backend — accuracy vs latency
// ---------------------------------------------------------------------------

/// The f32-vs-int8 deployed-backend comparison: tracking accuracy of the two
/// backends over identical motion sequences, host-measured forward latency
/// of the two networks, and the accelerator-side effective compute and
/// simulated throughput of the corresponding workloads (paper Tables 2/3
/// "8-bit" rows, deployed end-to-end instead of fake-quantised).
#[derive(Debug, Clone, Serialize)]
pub struct Int8BackendComparison {
    /// Mean tracking error over the evaluation sequence, f32 backend.
    pub f32_error_deg: f32,
    /// Same sequence on the int8 backend (after warm-up calibration).
    pub int8_error_deg: f32,
    /// Host median latency of one f32 gaze forward, µs.
    pub f32_forward_us: f64,
    /// Host median latency of one int8 gaze forward, µs.
    pub int8_forward_us: f64,
    /// Effective accelerator compute per 50-frame window at f32 (GFLOPs,
    /// bit-serial convention).
    pub f32_effective_window_gflops: f64,
    /// Effective window compute of the deployed int8 workload (GFLOPs).
    pub int8_effective_window_gflops: f64,
    /// Simulated accelerator throughput on the f32 workload.
    pub f32_sim_fps: f64,
    /// Simulated accelerator throughput on the deployed int8 workload.
    pub int8_sim_fps: f64,
}

/// Runs the deployed-backend comparison: trains one tracker model set, runs
/// the same motion sequence through the f32 and int8 backends, then times
/// both forwards and simulates both accelerator workloads.
pub fn int8_backend_comparison(scale: Scale) -> Int8BackendComparison {
    use std::time::Instant;

    let mut config = TrackerConfig::small();
    config.gaze_backend = GazeBackend::F32;
    let models = train_tracker_models(&scale.training(), &config);
    let frames = scale.seq_frames();

    let run = |backend: GazeBackend| {
        let mut cfg = config.clone();
        cfg.gaze_backend = backend;
        let mut tracker = EyeTracker::new(cfg, models.clone_models());
        let stats = tracker.run_sequence(&mut EyeMotionGenerator::with_seed(41), frames);
        (stats.mean_error_deg(), tracker)
    };
    let (f32_error_deg, _) = run(GazeBackend::F32);
    let (int8_error_deg, int8_tracker) = run(GazeBackend::Int8);
    let qnet = int8_tracker
        .quantized_gaze()
        .expect("sequence is longer than the calibration window");

    // host forward latency on one representative crop (median of repeats)
    let input = Tensor::from_fn(
        eyecod_tensor::Shape::new(1, 1, config.gaze_input.0, config.gaze_input.1),
        |_, _, h, w| ((h * 7 + w * 3) % 11) as f32 / 11.0,
    );
    fn median_us<F: FnMut()>(mut f: F) -> f64 {
        let reps = 15;
        let mut samples: Vec<f64> = (0..reps)
            .map(|_| {
                let t = Instant::now();
                f();
                t.elapsed().as_secs_f64() * 1e6
            })
            .collect();
        samples.sort_by(f64::total_cmp);
        samples[reps / 2]
    }
    let mut f32_net = models.clone_models().gaze;
    let f32_forward_us = median_us(|| {
        f32_net.forward(&input, false);
    });
    let int8_forward_us = median_us(|| {
        qnet.forward(&input);
    });

    // accelerator side: the paper-scale workload with the gaze stage as
    // deployed (f32 FBNet spec vs the calibrated int8 chain at 8 bits)
    let f32_wl = EyeCodWorkload::paper_default().into_workload();
    let int8_wl = EyeCodWorkload::paper_default()
        .into_workload()
        .with_int8_gaze(qnet, 96, 160);
    let sim = |wl: &eyecod_accel::workload::PipelineWorkload| {
        WindowSimulator::new(AcceleratorConfig::paper_default())
            .run_window(wl)
            .fps
    };

    Int8BackendComparison {
        f32_error_deg,
        int8_error_deg,
        f32_forward_us,
        int8_forward_us,
        f32_effective_window_gflops: f32_wl.effective_window_flops() as f64 / 1e9,
        int8_effective_window_gflops: int8_wl.effective_window_flops() as f64 / 1e9,
        f32_sim_fps: sim(&f32_wl),
        int8_sim_fps: sim(&int8_wl),
    }
}

// ---------------------------------------------------------------------------
// §5.1 in-text analysis numbers
// ---------------------------------------------------------------------------

/// The §5.1 analysis bundle.
#[derive(Debug, Clone, Serialize)]
pub struct Section51Analysis {
    /// MAC share per layer class over a 50-frame window
    /// `(conv, pointwise, depthwise, fc, matmul)`.
    pub op_fractions: (f64, f64, f64, f64, f64),
    /// Depth-wise share of MACs (paper: 7.9 %).
    pub depthwise_op_share: f64,
    /// Depth-wise share of *time* without intra-channel reuse
    /// (paper: 33.6 %).
    pub depthwise_time_share_naive: f64,
    /// Depth-wise processing-time reduction from intra-channel reuse
    /// (paper: 71 %).
    pub depthwise_time_reduction: f64,
    /// Partial time-multiplexing speedup over plain time-multiplexing
    /// (paper: 1.28× overall / 2.31× peak).
    pub partial_over_timemux: f64,
    /// Activation memory with partition ÷ without (paper: ~36 %).
    pub partitioned_activation_ratio: f64,
    /// Peak activation bytes without partition (paper: 2.78 MB).
    pub unpartitioned_activation_bytes: u64,
    /// SWPR bandwidth saving for a 3×3 kernel (paper: 50–60 %).
    pub swpr_bandwidth_saving_3x3: f64,
}

/// Computes every in-text §5.1 number from the simulator and specs.
pub fn section51_analysis() -> Section51Analysis {
    let workload = EyeCodWorkload::paper_default().into_workload();
    let frac = workload.window_op_breakdown().fractions();

    // depth-wise time share without optimisations
    let naive = AcceleratorConfig {
        swpr_buffer: false,
        intra_channel_reuse: false,
        orchestration: Orchestration::TimeMultiplexed,
        ..AcceleratorConfig::paper_default()
    };
    let rep_naive = WindowSimulator::new(naive.clone()).run_window(&workload);
    let dw_cycles: u64 = rep_naive
        .frame_costs
        .iter()
        .filter(|c| c.is_depthwise)
        .map(|c| c.cycles)
        .sum();
    let total_frame: u64 = rep_naive.frame_costs.iter().map(|c| c.cycles).sum();
    let depthwise_time_share_naive = dw_cycles as f64 / total_frame as f64;

    // intra-channel reuse reduction on the depth-wise cycles
    let tuned = AcceleratorConfig {
        intra_channel_reuse: true,
        ..naive.clone()
    };
    let rep_tuned = WindowSimulator::new(tuned).run_window(&workload);
    let dw_tuned: u64 = rep_tuned
        .frame_costs
        .iter()
        .filter(|c| c.is_depthwise)
        .map(|c| c.cycles)
        .sum();
    let depthwise_time_reduction = 1.0 - dw_tuned as f64 / dw_cycles.max(1) as f64;

    // partial vs time-multiplexed orchestration (all else at full config)
    let tm = WindowSimulator::new(AcceleratorConfig {
        orchestration: Orchestration::TimeMultiplexed,
        ..AcceleratorConfig::paper_default()
    })
    .run_window(&workload);
    let pm = WindowSimulator::new(AcceleratorConfig::paper_default()).run_window(&workload);

    // activation footprints at the paper's deployed resolutions
    let seg = ritnet::spec(128);
    let gaze = fbnet::spec(96, 160);
    let unpart = peak_activation_bytes(&seg, 1) + peak_activation_bytes(&gaze, 1);
    let part = partitioned_activation_bytes(&seg, 4, 1) + partitioned_activation_bytes(&gaze, 4, 1);

    let bw_without = peak_bandwidth_rows_per_cycle(16, 3, false);
    let bw_with = peak_bandwidth_rows_per_cycle(16, 3, true);

    Section51Analysis {
        op_fractions: frac,
        depthwise_op_share: frac.2,
        depthwise_time_share_naive,
        depthwise_time_reduction,
        partial_over_timemux: pm.fps / tm.fps,
        partitioned_activation_ratio: part as f64 / unpart as f64,
        unpartitioned_activation_bytes: unpart,
        swpr_bandwidth_saving_3x3: 1.0 - bw_with / bw_without,
    }
}
