//! # eyecod-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! EyeCoD paper's evaluation (§6). Each criterion bench in `benches/`
//! prints the corresponding table rows / figure series before measuring the
//! kernels involved, and the harness functions here are shared between the
//! benches and the `report` binary (which emits all experiments as JSON +
//! text in one run).
//!
//! | Target | Paper artefact |
//! |---|---|
//! | `fig07_utilization` | Fig. 7 MAC-utilisation timeline |
//! | `fig14_overall` | Fig. 14 throughput / energy comparison |
//! | `table2_gaze_models` | Table 2 gaze models (error/params/FLOPs) |
//! | `table3_segmentation` | Table 3 RITNet mIOU vs resolution/precision |
//! | `table4_roi_ablation` | Table 4 crop-strategy ablation |
//! | `table5_roi_freq` | Table 5 ROI frequency & size ablation |
//! | `table6_accel_ablation` | Table 6 accelerator feature ladder |
//! | `micro_kernels` | component micro-benchmarks |

pub mod experiments;
pub mod reporting;
