//! Text-table and JSON output for the experiment harness.

use serde::Serialize;
use std::fs;
use std::path::Path;

/// Prints a fixed-width text table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let header_line: Vec<String> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| format!("{h:<w$}", w = widths[i]))
        .collect();
    println!("{}", header_line.join("  "));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1))
    );
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:<w$}", w = widths.get(i).copied().unwrap_or(0)))
            .collect();
        println!("{}", line.join("  "));
    }
}

/// Serialises a value as pretty JSON under `dir/name.json`.
///
/// # Panics
///
/// Panics if the directory cannot be created or the file cannot be written
/// (the harness treats unwritable results as a hard failure).
pub fn write_json<T: Serialize>(dir: &Path, name: &str, value: &T) {
    fs::create_dir_all(dir).unwrap_or_else(|e| panic!("cannot create {dir:?}: {e}"));
    let path = dir.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).expect("serialisable experiment rows");
    fs::write(&path, json).unwrap_or_else(|e| panic!("cannot write {path:?}: {e}"));
    println!("[wrote {}]", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_printing_does_not_panic() {
        print_table(
            "demo",
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
    }

    #[test]
    fn json_round_trip() {
        let dir = std::env::temp_dir().join("eyecod_bench_test");
        write_json(&dir, "probe", &vec![1, 2, 3]);
        let back: Vec<i32> =
            serde_json::from_str(&std::fs::read_to_string(dir.join("probe.json")).unwrap())
                .unwrap();
        assert_eq!(back, vec![1, 2, 3]);
    }
}
