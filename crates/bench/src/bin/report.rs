//! Regenerates every table and figure of the paper in one run.
//!
//! ```text
//! cargo run --release -p eyecod-bench --bin report            # quick
//! cargo run --release -p eyecod-bench --bin report -- --full  # standard scale
//! cargo run --release -p eyecod-bench --bin report -- --telemetry
//! ```
//!
//! Prints the tables and writes JSON artefacts to `target/experiments/`.
//! With `--telemetry` the run additionally forces telemetry on, prints the
//! per-stage latency quantiles of the pipeline, and writes the full metric
//! snapshot to `target/experiments/telemetry_snapshot.json`.

use eyecod_accel::config::AcceleratorConfig;
use eyecod_bench::experiments::{self, Scale};
use eyecod_bench::reporting::{print_table, write_json};
use std::path::PathBuf;
use std::time::Instant;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let telemetry = std::env::args().any(|a| a == "--telemetry");
    let scale = if full { Scale::Standard } else { Scale::Quick };
    let out = PathBuf::from("target/experiments");
    if telemetry {
        eyecod_telemetry::set_enabled(true);
    }
    println!(
        "EyeCoD experiment report — scale: {:?} (pass --full for the recorded scale)",
        scale
    );
    let t0 = Instant::now();

    // --- Table 1 / Fig. 13: accelerator configuration ---
    let cfg = AcceleratorConfig::paper_default();
    print_table(
        "Table 1 — accelerator configuration",
        &["item", "value"],
        &[
            vec!["MAC lanes".into(), cfg.mac_lanes.to_string()],
            vec!["MACs / lane".into(), cfg.macs_per_lane.to_string()],
            vec!["total MACs".into(), cfg.total_macs().to_string()],
            vec!["clock".into(), format!("{} MHz", cfg.clock_mhz)],
            vec![
                "Act GB".into(),
                format!("{} x {} KB", cfg.act_gb_count, cfg.act_gb_bytes / 1024),
            ],
            vec![
                "Weight GB / buffers".into(),
                format!(
                    "{} KB / 2 x {} KB",
                    cfg.weight_gb_bytes / 1024,
                    cfg.weight_buffer_bytes / 1024
                ),
            ],
            vec![
                "Index / Instr SRAM".into(),
                format!(
                    "{} KB / {} KB",
                    cfg.index_sram_bytes / 1024,
                    cfg.instr_sram_bytes / 1024
                ),
            ],
            vec![
                "total SRAM".into(),
                format!("{} KB", cfg.total_sram_bytes() / 1024),
            ],
        ],
    );
    write_json(&out, "table1_config", &cfg);

    // --- Fig. 14 ---
    let fig14 = experiments::fig14_overall();
    print_table(
        "Fig. 14 — overall throughput & energy efficiency",
        &["platform", "FPS", "frames/J", "norm. energy eff."],
        &fig14
            .iter()
            .map(|r| {
                vec![
                    r.name.clone(),
                    format!("{:.2}", r.fps),
                    format!("{:.1}", r.frames_per_joule),
                    format!("{:.4}", r.norm_energy_eff),
                ]
            })
            .collect::<Vec<_>>(),
    );
    let eyecod_fps = fig14.last().map(|r| r.fps).unwrap_or(0.0);
    let ratios: Vec<String> = fig14
        .iter()
        .filter(|r| r.name != "EyeCoD")
        .map(|r| format!("{}: {:.2}x", r.name, eyecod_fps / r.fps))
        .collect();
    println!("EyeCoD throughput speedups -> {}", ratios.join(", "));
    write_json(&out, "fig14_overall", &fig14);

    // --- Fig. 7 ---
    let (series, mean_util, below) = experiments::fig7_utilization(48);
    print_table(
        "Fig. 7 — MAC utilisation running the per-frame stages",
        &["time (us)", "utilisation"],
        &series
            .iter()
            .step_by(4)
            .map(|(t, u)| vec![format!("{t:.1}"), format!("{:.1}%", u * 100.0)])
            .collect::<Vec<_>>(),
    );
    println!(
        "mean {:.1}%, {:.1}% of time below the 80% line",
        mean_util * 100.0,
        below * 100.0
    );
    write_json(&out, "fig07_utilization", &series);

    // --- Table 6 ---
    let t6 = experiments::table6_accel_ablation();
    print_table(
        "Table 6 — accelerator/system feature ladder",
        &["system", "FPS", "norm. energy eff.", "utilisation"],
        &t6.iter()
            .map(|r| {
                vec![
                    r.system.clone(),
                    format!("{:.2}", r.fps),
                    format!("{:.2}", r.norm_energy_eff),
                    format!("{:.1}%", r.utilization * 100.0),
                ]
            })
            .collect::<Vec<_>>(),
    );
    write_json(&out, "table6_accel_ablation", &t6);

    // --- §5.1 analysis ---
    let s51 = experiments::section51_analysis();
    let (c, p, d, f, m) = s51.op_fractions;
    print_table(
        "§5.1 — in-text analysis numbers",
        &["quantity", "measured", "paper"],
        &[
            vec![
                "generic conv ops".into(),
                format!("{:.1}%", c * 100.0),
                "8.8%".into(),
            ],
            vec![
                "point-wise ops".into(),
                format!("{:.1}%", p * 100.0),
                "68.8%".into(),
            ],
            vec![
                "depth-wise ops".into(),
                format!("{:.1}%", d * 100.0),
                "7.9%".into(),
            ],
            vec![
                "FC ops".into(),
                format!("{:.4}%", f * 100.0),
                "0.001%".into(),
            ],
            vec![
                "matmul ops".into(),
                format!("{:.1}%", m * 100.0),
                "14.5%".into(),
            ],
            vec![
                "depth-wise time share (naive)".into(),
                format!("{:.1}%", s51.depthwise_time_share_naive * 100.0),
                "33.6%".into(),
            ],
            vec![
                "depth-wise time cut by reuse".into(),
                format!("{:.1}%", s51.depthwise_time_reduction * 100.0),
                "71%".into(),
            ],
            vec![
                "partial over time-mux".into(),
                format!("{:.2}x", s51.partial_over_timemux),
                "1.28x".into(),
            ],
            vec![
                "partitioned act memory".into(),
                format!("{:.1}%", s51.partitioned_activation_ratio * 100.0),
                "~36%".into(),
            ],
            vec![
                "unpartitioned act bytes".into(),
                format!("{:.2} MB", s51.unpartitioned_activation_bytes as f64 / 1e6),
                "2.78 MB".into(),
            ],
            vec![
                "SWPR bandwidth saving (3x3)".into(),
                format!("{:.0}%", s51.swpr_bandwidth_saving_3x3 * 100.0),
                "50-60%".into(),
            ],
        ],
    );
    write_json(&out, "section51_analysis", &s51);

    // --- Table 2 ---
    println!("\n[training gaze-model proxies for Table 2 — this takes a while]");
    let t2 = experiments::table2_gaze_models(scale);
    print_table(
        "Table 2 — gaze estimation models",
        &[
            "model",
            "camera",
            "input",
            "error (deg)",
            "params (M)",
            "FLOPs (G)",
        ],
        &t2.iter()
            .map(|r| {
                vec![
                    r.model.clone(),
                    r.camera.clone(),
                    r.resolution.clone(),
                    format!("{:.2}", r.error_deg),
                    format!("{:.2}", r.params_m),
                    format!("{:.3}", r.flops_g),
                ]
            })
            .collect::<Vec<_>>(),
    );
    write_json(&out, "table2_gaze_models", &t2);

    // --- Table 3 ---
    println!("\n[training segmentation proxies for Table 3]");
    let t3 = experiments::table3_segmentation(scale);
    print_table(
        "Table 3 — segmentation vs resolution / precision / camera",
        &[
            "model",
            "proxy res",
            "mIOU origin",
            "mIOU FlatCam",
            "FLOPs (G, paper res)",
        ],
        &t3.iter()
            .map(|r| {
                vec![
                    r.model.clone(),
                    format!("{0}x{0}", r.resolution),
                    format!("{:.3}", r.miou_origin),
                    format!("{:.3}", r.miou_flatcam),
                    format!("{:.2}", r.flops_g),
                ]
            })
            .collect::<Vec<_>>(),
    );
    write_json(&out, "table3_segmentation", &t3);

    // --- Table 4 ---
    println!("\n[training crop-strategy proxies for Table 4]");
    let t4 = experiments::table4_roi_ablation(scale);
    print_table(
        "Table 4 — ROI prediction ablation",
        &["strategy", "gaze error (deg)"],
        &t4.iter()
            .map(|r| vec![r.strategy.clone(), format!("{:.2}", r.error_deg)])
            .collect::<Vec<_>>(),
    );
    write_json(&out, "table4_roi_ablation", &t4);

    // --- Table 5 ---
    println!("\n[running ROI frequency/size sweeps for Table 5]");
    let t5 = experiments::table5_roi_freq(scale);
    print_table(
        "Table 5 — ROI frequency & size ablation",
        &[
            "period",
            "ROI (ours)",
            "ROI (paper scale)",
            "error (deg)",
            "gaze MFLOPs/frame",
            "seg MFLOPs/frame",
        ],
        &t5.iter()
            .map(|r| {
                vec![
                    r.roi_period.to_string(),
                    r.roi_size.clone(),
                    r.paper_roi.clone(),
                    format!("{:.2}", r.error_deg),
                    format!("{:.1}", r.gaze_mflops_per_frame),
                    format!("{:.1}", r.seg_mflops_per_frame),
                ]
            })
            .collect::<Vec<_>>(),
    );
    write_json(&out, "table5_roi_freq", &t5);

    // --- Int8 deployed gaze backend ---
    println!("\n[running the f32-vs-int8 deployed backend comparison]");
    let int8 = experiments::int8_backend_comparison(scale);
    print_table(
        "Int8 gaze backend — accuracy vs latency",
        &[
            "backend",
            "tracking error (deg)",
            "forward (us, host)",
            "window compute (GFLOPs)",
            "simulated FPS",
        ],
        &[
            vec![
                "f32".into(),
                format!("{:.2}", int8.f32_error_deg),
                format!("{:.1}", int8.f32_forward_us),
                format!("{:.3}", int8.f32_effective_window_gflops),
                format!("{:.2}", int8.f32_sim_fps),
            ],
            vec![
                "int8 (deployed)".into(),
                format!("{:.2}", int8.int8_error_deg),
                format!("{:.1}", int8.int8_forward_us),
                format!("{:.3}", int8.int8_effective_window_gflops),
                format!("{:.2}", int8.int8_sim_fps),
            ],
        ],
    );
    println!(
        "accuracy cost {:+.2}°, effective window compute {:.1}x smaller, simulated speedup {:.2}x",
        int8.int8_error_deg - int8.f32_error_deg,
        int8.f32_effective_window_gflops / int8.int8_effective_window_gflops.max(1e-9),
        int8.int8_sim_fps / int8.f32_sim_fps.max(1e-9),
    );
    write_json(&out, "int8_backend_comparison", &int8);

    if telemetry {
        dump_telemetry(&out);
    }

    println!("\nreport complete in {:.1}s", t0.elapsed().as_secs_f32());
}

/// Prints per-stage latency quantiles and writes the full snapshot JSON.
fn dump_telemetry(out: &std::path::Path) {
    use eyecod_core::tracker::{EyeTracker, TrackerConfig};
    use eyecod_core::training::{train_tracker_models, TrainingSetup};
    use eyecod_eyedata::sequence::EyeMotionGenerator;

    // Run one short tracked sequence explicitly so every stage histogram
    // is populated even if the experiment set above changes.
    println!("\n[tracking a short sequence for the telemetry snapshot]");
    let config = TrackerConfig::small();
    let models = train_tracker_models(&TrainingSetup::quick(), &config);
    let mut tracker = EyeTracker::new(config, models);
    tracker.run_sequence(&mut EyeMotionGenerator::with_seed(1), 20);

    let snap = eyecod_telemetry::global().snapshot();
    let us = |ns: u64| format!("{:.1}", ns as f64 / 1e3);
    print_table(
        "Telemetry — stage latency histograms",
        &["stage", "count", "median (us)", "p99 (us)", "mean (us)"],
        &snap
            .histograms
            .iter()
            .filter(|h| h.name.ends_with("_ns"))
            .map(|h| {
                vec![
                    h.name.clone(),
                    h.count.to_string(),
                    us(h.median()),
                    us(h.p99()),
                    us(h.mean() as u64),
                ]
            })
            .collect::<Vec<_>>(),
    );
    let cycle_rows: Vec<Vec<String>> = snap
        .histograms
        .iter()
        .filter(|h| !h.name.ends_with("_ns"))
        .map(|h| {
            vec![
                h.name.clone(),
                h.count.to_string(),
                h.median().to_string(),
                h.p99().to_string(),
            ]
        })
        .collect();
    if !cycle_rows.is_empty() {
        print_table(
            "Telemetry — simulated-cycle histograms",
            &["histogram", "count", "median", "p99"],
            &cycle_rows,
        );
    }
    print_table(
        "Telemetry — counters",
        &["counter", "value"],
        &snap
            .counters
            .iter()
            .map(|c| vec![c.name.clone(), c.value.to_string()])
            .collect::<Vec<_>>(),
    );
    write_json(out, "telemetry_snapshot", &snap);
}
