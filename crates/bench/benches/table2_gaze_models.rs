//! Table 2 — gaze-estimation models: error / params / FLOPs for ResNet18
//! (lens & FlatCam), MobileNet, FBNet-C100 and FBNet-C100 (8-bit).
//!
//! The table rows are regenerated at quick scale during setup (proxy
//! training); criterion then measures the deployment-relevant kernels: a
//! gaze-network forward pass in fp32 and int8.

use criterion::{criterion_group, criterion_main, Criterion};
use eyecod_bench::experiments::{table2_gaze_models, Scale};
use eyecod_bench::reporting::print_table;
use eyecod_models::proxy::{quantize_params_int8, GazeFamily, ProxyGazeNet};
use eyecod_tensor::{Layer, Shape, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn print_rows() {
    let rows = table2_gaze_models(Scale::Quick);
    print_table(
        "Table 2 — gaze estimation models (proxy errors, full-spec params/FLOPs)",
        &[
            "model",
            "camera",
            "input",
            "error (deg)",
            "params (M)",
            "FLOPs (G)",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.model.clone(),
                    r.camera.clone(),
                    r.resolution.clone(),
                    format!("{:.2}", r.error_deg),
                    format!("{:.2}", r.params_m),
                    format!("{:.3}", r.flops_g),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!("paper: ResNet18 lens 3.17 | ResNet18 0.56G | MobileNet 3.43 | FBNet 3.23 | FBNet-8bit 3.23");
}

fn bench(c: &mut Criterion) {
    print_rows();
    let mut rng = StdRng::seed_from_u64(0);
    let mut fp32 = ProxyGazeNet::new(GazeFamily::FbnetLike, &mut rng);
    let mut int8 = ProxyGazeNet::new(GazeFamily::FbnetLike, &mut rng);
    quantize_params_int8(&mut int8);
    let input = Tensor::ones(Shape::new(1, 1, 24, 32));
    c.bench_function("table2/gaze_forward_fp32", |b| {
        b.iter(|| fp32.forward(&input, false))
    });
    c.bench_function("table2/gaze_forward_int8_weights", |b| {
        b.iter(|| int8.forward(&input, false))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
