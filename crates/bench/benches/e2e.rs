//! End-to-end frames-per-second benchmark — the repo's single tracked
//! performance number on the road to i-FlatCam's 253 FPS operating point
//! (arXiv 2206.08141).
//!
//! Two outputs:
//!
//! * `e2e/*` criterion groups for interactive comparison
//!   (`cargo bench -p eyecod-bench --bench e2e`);
//! * a `BENCH_e2e.json` artifact at the repository root with, per gaze
//!   backend (f32 / int8), the steady-state single-session FPS and the
//!   p50/p99 frame latency, plus the serve-tick fleet FPS at 16 sessions —
//!   emitted every PR so the repository accumulates an FPS trajectory
//!   (see the "FPS trajectory" section of the README).
//!
//! The artifact also carries a **sparsity sweep**: for each motion mix
//! (fixation / smooth-pursuit / saccadic, the [`MotionConfig`] presets)
//! and each gaze backend, dense-mode FPS vs event-driven delta-mode FPS
//! over the same prerendered sequence, with the gated/sparse frame split
//! in the row's note. Fixation-heavy traffic is the acceptance point: the
//! motion gate must buy ≥ 2× there, while the saccade-heavy mix documents
//! the honest worst case (most frames move too many pixels to gate).
//!
//! "Steady state" means past int8 calibration and at least one ROI refresh:
//! the tracker warms up for 30 frames before any timing starts, and the
//! measured window spans several ROI refresh periods so the p99 captures
//! refresh-frame cost, not just the cheap inter-refresh frames. The host's
//! SIMD capability is recorded in the JSON (a non-AVX2 host is noted, not
//! faked).

use criterion::{criterion_group, Criterion};
use eyecod_core::tracker::{EyeTracker, GazeBackend, TrackerConfig};
use eyecod_core::training::{train_tracker_models, TrackerModels, TrainingSetup};
use eyecod_eyedata::render::{render_eye, EyeParams};
use eyecod_eyedata::{EyeMotionGenerator, MotionConfig};
use eyecod_faults::FaultPlan;
use eyecod_serve::{ServeConfig, ServeRegistry};
use eyecod_tensor::{simd, Tensor};
use serde::Serialize;
use std::path::Path;
use std::sync::OnceLock;
use std::time::Instant;

/// Frames to run before timing starts (past the 8 int8 calibration frames
/// and several ROI refreshes at `roi_period = 10`).
const WARMUP_FRAMES: u64 = 30;
/// Frames in the measured steady-state window.
const MEASURED_FRAMES: usize = 150;
/// Fleet size for the serve-tick measurement.
const FLEET: usize = 16;
/// The standing system target (i-FlatCam, arXiv 2206.08141).
const TARGET_FPS: f64 = 253.0;

fn shared() -> &'static (TrackerConfig, TrackerModels, Tensor) {
    static SHARED: OnceLock<(TrackerConfig, TrackerModels, Tensor)> = OnceLock::new();
    SHARED.get_or_init(|| {
        let cfg = TrackerConfig::small();
        let models = train_tracker_models(&TrainingSetup::quick(), &cfg);
        let scene = render_eye(&EyeParams::centered(cfg.scene_size), cfg.scene_size, 0).image;
        (cfg, models, scene)
    })
}

/// A tracker warmed past calibration and ROI refresh on `backend`.
fn warm_tracker(backend: GazeBackend) -> EyeTracker {
    let (cfg, models, scene) = shared();
    let mut cfg = cfg.clone();
    cfg.gaze_backend = backend;
    let mut tracker = EyeTracker::new(cfg, models.clone_models());
    for f in 0..WARMUP_FRAMES {
        tracker.process_frame(scene, f);
    }
    tracker
}

fn backend_name(backend: GazeBackend) -> &'static str {
    match backend {
        GazeBackend::F32 => "f32",
        GazeBackend::Int8 => "int8",
        GazeBackend::Latent => "latent",
    }
}

/// Every measured backend, in artifact row order.
const BACKENDS: [GazeBackend; 3] = [GazeBackend::F32, GazeBackend::Int8, GazeBackend::Latent];

fn bench(c: &mut Criterion) {
    let (_, _, scene) = shared();
    for backend in BACKENDS {
        let mut tracker = warm_tracker(backend);
        let mut frame = WARMUP_FRAMES;
        c.bench_function(&format!("e2e/frame_{}", backend_name(backend)), |bch| {
            bch.iter(|| {
                frame += 1;
                tracker.process_frame(scene, frame)
            })
        });
    }
}

/// Steady-state per-backend measurements.
#[derive(Serialize)]
struct BackendRow {
    backend: &'static str,
    /// Frames in the measured window.
    frames: usize,
    /// Sustained steady-state throughput over the whole window.
    fps: f64,
    /// Median frame latency, nanoseconds.
    p50_ns: u64,
    /// 99th-percentile frame latency, nanoseconds (includes ROI-refresh
    /// frames: the window spans several refresh periods).
    p99_ns: u64,
}

/// Host capability record — so a number measured without AVX2 is labelled
/// as such instead of silently comparing unlike hosts across PRs.
#[derive(Serialize)]
struct SimdInfo {
    avx2_supported: bool,
    simd_enabled: bool,
    threads: usize,
    note: String,
}

/// One cell of the sparsity sweep: dense vs delta mode on one motion mix
/// under one gaze backend, over the identical prerendered sequence.
#[derive(Serialize)]
struct SparsityRow {
    /// Motion mix ("fixation" / "smooth_pursuit" / "saccadic").
    mix: &'static str,
    backend: &'static str,
    /// Frames in each measured window.
    frames: usize,
    /// Dense-mode throughput (every frame runs the full pipeline).
    dense_fps: f64,
    /// Delta-mode throughput (`EYECOD_DELTA` semantics: motion gate +
    /// sparse column updates between scheduled refreshes).
    delta_fps: f64,
    /// `delta_fps / dense_fps`.
    speedup: f64,
    /// The gated / sparse / dense frame split behind the number — never
    /// empty, so a sweep row can't silently claim a speedup without
    /// documenting the traffic that produced it.
    note: String,
}

#[derive(Serialize)]
struct E2eReport {
    /// The standing FPS target this trajectory tracks.
    target_fps: f64,
    simd: SimdInfo,
    backends: Vec<BackendRow>,
    /// Serve-tick fleet throughput: frames per second across a warm
    /// 16-session fleet (mixed f32/int8/latent backends, batching on).
    fleet_sessions: usize,
    fleet_tick_ns: u64,
    fleet_fps: f64,
    /// Dense-vs-delta sweep over the motion-mix presets.
    sparsity: Vec<SparsityRow>,
}

/// Measures one backend's steady-state window.
fn measure_backend(backend: GazeBackend) -> BackendRow {
    let (_, _, scene) = shared();
    let mut tracker = warm_tracker(backend);
    let mut lat = Vec::with_capacity(MEASURED_FRAMES);
    let t0 = Instant::now();
    for i in 0..MEASURED_FRAMES {
        let f0 = Instant::now();
        std::hint::black_box(tracker.process_frame(scene, WARMUP_FRAMES + i as u64));
        lat.push(f0.elapsed().as_nanos() as u64);
    }
    let total = t0.elapsed().as_nanos() as u64;
    lat.sort_unstable();
    BackendRow {
        backend: backend_name(backend),
        frames: MEASURED_FRAMES,
        fps: MEASURED_FRAMES as f64 * 1e9 / total as f64,
        p50_ns: lat[MEASURED_FRAMES / 2],
        p99_ns: lat[(MEASURED_FRAMES * 99) / 100],
    }
}

/// Measures the steady-state serve tick over a warm mixed-backend fleet.
fn measure_fleet() -> (u64, f64) {
    let (cfg, models, scene) = shared();
    let sc = ServeConfig::new(cfg.clone());
    let mut reg = ServeRegistry::new(sc, models.clone_models()).with_faults(FaultPlan::none());
    let ids: Vec<_> = (0..FLEET)
        .map(|s| {
            reg.create_with_backend(BACKENDS[s % BACKENDS.len()])
                .unwrap()
        })
        .collect();
    let mut round = 0u64;
    let mut tick = || {
        for id in &ids {
            reg.feed(*id, scene, round).unwrap();
        }
        round += 1;
        reg.tick()
    };
    for _ in 0..12 {
        tick(); // warm: past calibration and ROI refresh for every session
    }
    let tick_ns = (0..12)
        .map(|_| {
            let t0 = Instant::now();
            std::hint::black_box(tick());
            t0.elapsed().as_nanos() as u64
        })
        .min()
        .unwrap();
    (tick_ns, FLEET as f64 * 1e9 / tick_ns as f64)
}

/// One motion mix of the sparsity sweep: label plus preset constructor.
type MotionMix = (&'static str, fn() -> MotionConfig);

/// The motion mixes of the sparsity sweep, in artifact row order.
const MIXES: [MotionMix; 3] = [
    ("fixation", MotionConfig::fixation),
    ("smooth_pursuit", MotionConfig::smooth_pursuit),
    ("saccadic", MotionConfig::saccadic),
];

/// Prerenders one motion mix's sequence (rendering is excluded from every
/// timed window; both modes replay the identical frames).
fn render_mix(config: MotionConfig, seed: u64, frames: usize) -> Vec<Tensor> {
    let (cfg, _, _) = shared();
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
    let mut motion = EyeMotionGenerator::new(EyeParams::random(&mut rng), config, seed);
    (0..frames)
        .map(|i| render_eye(&motion.next_frame(), cfg.scene_size, seed + i as u64).image)
        .collect()
}

/// Times one (mix, backend, mode) cell: warm past calibration and the
/// first refresh on the sequence's own frames, then measure a full window
/// cycling the same frames. Returns (fps, gated frames, sparse frames).
fn measure_sparsity_cell(
    frames: &[Tensor],
    backend: GazeBackend,
    delta: bool,
) -> (f64, usize, usize) {
    let (cfg, models, _) = shared();
    let mut cfg = cfg.clone();
    cfg.gaze_backend = backend;
    cfg.delta = delta;
    cfg.delta_threshold = 16;
    let mut tracker = EyeTracker::new(cfg, models.clone_models());
    for f in 0..WARMUP_FRAMES {
        tracker.process_frame(&frames[f as usize % frames.len()], f);
    }
    let (mut gated, mut sparse) = (0usize, 0usize);
    let t0 = Instant::now();
    for i in 0..MEASURED_FRAMES {
        let out = std::hint::black_box(tracker.process_frame(
            &frames[(WARMUP_FRAMES as usize + i) % frames.len()],
            WARMUP_FRAMES + i as u64,
        ));
        if out.gaze_skipped {
            gated += 1;
        } else if !out.roi_refreshed {
            sparse += 1;
        }
    }
    let total = t0.elapsed().as_nanos() as u64;
    (MEASURED_FRAMES as f64 * 1e9 / total as f64, gated, sparse)
}

/// The dense-vs-delta sweep across motion mixes and backends.
fn measure_sparsity() -> Vec<SparsityRow> {
    let mut rows = Vec::with_capacity(MIXES.len() * BACKENDS.len());
    for (m, (mix, preset)) in MIXES.iter().enumerate() {
        let frames = render_mix(preset(), 90 + m as u64, 60);
        for backend in BACKENDS {
            let (dense_fps, _, _) = measure_sparsity_cell(&frames, backend, false);
            let (delta_fps, gated, sparse) = measure_sparsity_cell(&frames, backend, true);
            let dense = MEASURED_FRAMES - gated - sparse;
            rows.push(SparsityRow {
                mix,
                backend: backend_name(backend),
                frames: MEASURED_FRAMES,
                dense_fps,
                delta_fps,
                speedup: delta_fps / dense_fps,
                note: format!(
                    "{gated} motion-gated + {sparse} sparse-update + {dense} dense frames \
                     of {MEASURED_FRAMES} (threshold 16 px)"
                ),
            });
        }
    }
    rows
}

fn write_e2e_artifact() {
    let note = if !simd::avx2_supported() {
        "host has no AVX2: all numbers are from the scalar kernels".to_string()
    } else if !simd::avx2_enabled() {
        "EYECOD_NO_SIMD set: all numbers are from the scalar kernels".to_string()
    } else {
        String::new()
    };
    let backends: Vec<BackendRow> = BACKENDS.into_iter().map(measure_backend).collect();
    let (fleet_tick_ns, fleet_fps) = measure_fleet();
    let sparsity = measure_sparsity();
    let report = E2eReport {
        target_fps: TARGET_FPS,
        simd: SimdInfo {
            avx2_supported: simd::avx2_supported(),
            simd_enabled: simd::avx2_enabled(),
            threads: std::thread::available_parallelism().map_or(1, |p| p.get()),
            note,
        },
        backends,
        fleet_sessions: FLEET,
        fleet_tick_ns,
        fleet_fps,
        sparsity,
    };
    let root = Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));
    eyecod_bench::reporting::write_json(root, "BENCH_e2e", &report);
    for b in &report.backends {
        println!(
            "e2e {:>5}: {:>8.1} fps (target {TARGET_FPS})   p50 {:>10} ns   p99 {:>10} ns",
            b.backend, b.fps, b.p50_ns, b.p99_ns
        );
    }
    println!(
        "e2e fleet: {} sessions, tick {} ns, {:.1} fps  {}",
        report.fleet_sessions, report.fleet_tick_ns, report.fleet_fps, report.simd.note
    );
    for r in &report.sparsity {
        println!(
            "e2e sparsity {:>14}/{:>6}: dense {:>8.1} fps, delta {:>8.1} fps ({:.2}x)  [{}]",
            r.mix, r.backend, r.dense_fps, r.delta_fps, r.speedup, r.note
        );
    }
}

criterion_group!(benches, bench);

fn main() {
    // `--artifact-only` skips criterion (CI smoke / artifact refresh)
    if !std::env::args().any(|a| a == "--artifact-only") {
        benches();
        Criterion::default().final_summary();
    }
    write_e2e_artifact();
}
