//! Table 4 — ROI prediction ablation: random vs central vs pupil-anchored
//! crops, and the ROI-prediction kernel costs.

use criterion::{criterion_group, criterion_main, Criterion};
use eyecod_bench::experiments::{table4_roi_ablation, Scale};
use eyecod_bench::reporting::print_table;
use eyecod_core::roi::{predict_roi, roi_size_from_sclera};
use eyecod_eyedata::render::{render_eye, EyeParams};

fn print_rows() {
    let rows = table4_roi_ablation(Scale::Quick);
    print_table(
        "Table 4 — gaze error by crop strategy",
        &["strategy", "error (deg)"],
        &rows
            .iter()
            .map(|r| vec![r.strategy.clone(), format!("{:.2}", r.error_deg)])
            .collect::<Vec<_>>(),
    );
    println!("paper: Random 12.64 | Central 11.57 | ROI (Ours) 3.23");
}

fn bench(c: &mut Criterion) {
    print_rows();
    let sample = render_eye(&EyeParams::centered(48), 48, 0);
    c.bench_function("table4/predict_roi", |b| {
        b.iter(|| predict_roi(&sample.labels, 48, 24, 32))
    });
    c.bench_function("table4/roi_size_from_sclera", |b| {
        b.iter(|| roi_size_from_sclera(&sample.labels, 48))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench
}
criterion_main!(benches);
