//! Table 6 — the accelerator/system feature ladder: lens-based →
//! +predict-then-focus → +SWPR input buffer → +partial time-multiplexing →
//! +depth-wise intra-channel reuse.

use criterion::{criterion_group, criterion_main, Criterion};
use eyecod_accel::config::AcceleratorConfig;
use eyecod_accel::cost::layer_cost;
use eyecod_accel::schedule::WindowSimulator;
use eyecod_accel::workload::EyeCodWorkload;
use eyecod_bench::experiments::table6_accel_ablation;
use eyecod_bench::reporting::print_table;
use eyecod_models::{LayerKind, LayerSpec};

fn print_rows() {
    let rows = table6_accel_ablation();
    print_table(
        "Table 6 — throughput & energy efficiency ladder",
        &["system", "FPS", "norm. energy eff.", "utilisation"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.system.clone(),
                    format!("{:.2}", r.fps),
                    format!("{:.2}", r.norm_energy_eff),
                    format!("{:.1}%", r.utilization * 100.0),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!("paper (FPS / norm. eff.): 96.34/1.00 -> 191.94/1.99 -> 233.64/2.43 -> 299.04/3.10 -> 385.66/4.00");
    let total = rows.last().unwrap().fps / rows.first().unwrap().fps;
    println!("measured end-to-end speedup: {total:.2}x (paper 4.00x)");
    for w in rows.windows(2) {
        println!(
            "  step {} -> {}: {:.2}x",
            w[0].system,
            w[1].system,
            w[1].fps / w[0].fps
        );
    }
}

fn bench(c: &mut Criterion) {
    print_rows();
    let workload = EyeCodWorkload::paper_default().into_workload();
    for (name, cfg) in [
        ("baseline", AcceleratorConfig::ablation_baseline()),
        ("full", AcceleratorConfig::paper_default()),
    ] {
        let sim = WindowSimulator::new(cfg);
        c.bench_function(&format!("table6/window_{name}"), |b| {
            b.iter(|| sim.run_window(&workload))
        });
    }
    // the hot inner function: per-layer cost evaluation
    let dw = LayerSpec {
        name: "dw".into(),
        kind: LayerKind::Depthwise { k: 5, stride: 1 },
        c_in: 112,
        c_out: 112,
        h_in: 6,
        w_in: 10,
    };
    let cfg = AcceleratorConfig::paper_default();
    c.bench_function("table6/layer_cost_depthwise", |b| {
        b.iter(|| layer_cost(&dw, 128, &cfg))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
