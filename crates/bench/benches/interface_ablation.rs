//! Sensing–processing interface ablation (paper §4.2): segment from
//! optical first-layer features vs from Tikhonov reconstructions, and
//! compare communication volume and electronic FLOPs.

use criterion::{criterion_group, criterion_main, Criterion};
use eyecod_bench::reporting::print_table;
use eyecod_core::interface::InterfaceSegPipeline;
use eyecod_core::training::TrainingSetup;
use eyecod_eyedata::render::{render_eye, EyeParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn print_ablation() {
    let scene = 48;
    let out_res = 24;
    let mut rng = StdRng::seed_from_u64(0);
    let mut pipe = InterfaceSegPipeline::new(scene, out_res, 8, &mut rng);
    let mut setup = TrainingSetup::quick();
    setup.seg_epochs = 12;
    pipe.train(&setup);
    let interface_miou = pipe.eval_miou(24);

    // reference: reconstruct-then-segment path at the same resolution
    // (numbers from the Table 3 experiment; regenerated here at quick scale)
    let rows =
        eyecod_bench::experiments::table3_segmentation(eyecod_bench::experiments::Scale::Quick);
    let recon_miou = rows
        .iter()
        .find(|r| r.model == "RITNet" && r.resolution == 24)
        .map(|r| r.miou_flatcam)
        .unwrap_or(f32::NAN);

    let raw_bytes = 64u64 * 64; // FlatCam measurement for the recon path
    print_table(
        "Sensing-processing interface ablation (§4.2)",
        &[
            "path",
            "mIOU",
            "camera->proc bytes/frame",
            "first-layer FLOPs on chip",
        ],
        &[
            vec![
                "reconstruct -> segment".into(),
                format!("{recon_miou:.3} (at scene res)"),
                raw_bytes.to_string(),
                "full".into(),
            ],
            vec![
                "optical first layer -> segment".into(),
                format!("{interface_miou:.3} (at feature res)"),
                pipe.bytes_per_frame().to_string(),
                format!("saves {:.2} MFLOPs/frame", pipe.flops_saved() as f64 / 1e6),
            ],
        ],
    );
    println!(
        "communication reduction: {:.2}x",
        raw_bytes as f64 / pipe.bytes_per_frame() as f64
    );
}

fn bench(c: &mut Criterion) {
    print_ablation();
    let mut rng = StdRng::seed_from_u64(1);
    let pipe = InterfaceSegPipeline::new(48, 24, 8, &mut rng);
    let s = render_eye(&EyeParams::centered(48), 48, 0);
    c.bench_function("interface/optical_sense", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            pipe.sense(&s.image, seed)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
