//! Fig. 7 — MAC utilisation timeline while running the per-frame stages,
//! plus a criterion measurement of the simulator itself.

use criterion::{criterion_group, criterion_main, Criterion};
use eyecod_accel::config::AcceleratorConfig;
use eyecod_accel::schedule::WindowSimulator;
use eyecod_accel::trace::UtilizationTrace;
use eyecod_accel::workload::EyeCodWorkload;
use eyecod_bench::reporting::print_table;

fn print_figure() {
    let (series, mean, below) = eyecod_bench::experiments::fig7_utilization(32);
    print_table(
        "Fig. 7 — MAC utilisation over one frame (gaze + recon stages)",
        &["time (us)", "utilisation", "bar"],
        &series
            .iter()
            .map(|(t, u)| {
                vec![
                    format!("{t:.1}"),
                    format!("{:.1}%", u * 100.0),
                    "#".repeat((u * 30.0) as usize),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!(
        "mean utilisation {:.1}% | {:.1}% of time below the 80% line (paper: dips \
         on depth-wise / small late layers feed the partial time-multiplexing mode)",
        mean * 100.0,
        below * 100.0
    );
}

fn bench(c: &mut Criterion) {
    print_figure();
    let cfg = AcceleratorConfig::paper_default();
    let workload = EyeCodWorkload::paper_default().into_workload();
    let sim = WindowSimulator::new(cfg.clone());
    c.bench_function("fig07/window_simulation", |b| {
        b.iter(|| sim.run_window(&workload))
    });
    let report = sim.run_window(&workload);
    c.bench_function("fig07/trace_resample", |b| {
        b.iter(|| {
            let t = UtilizationTrace::from_costs(&report.frame_costs, cfg.clock_mhz);
            t.resample(256)
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
