//! GEMM / convolution kernel benchmarks: cache-blocked register-tiled
//! kernels against the naive row-major dot-product kernels they replaced,
//! at the pipeline's real shapes.
//!
//! Two outputs:
//!
//! * `kernels/*` criterion groups for interactive comparison
//!   (`cargo bench -p eyecod-bench --bench kernels`);
//! * a `BENCH_kernels.json` artifact at the repository root with
//!   best-of-N wall times and blocked-vs-naive speedups for the
//!   reconstruction shapes and the 96×160 gaze-layer (ROI) shape — the
//!   record behind the "blocked ≥ 1.5× naive" acceptance line.

use criterion::{criterion_group, Criterion};
use eyecod_optics::mat::Mat;
use eyecod_tensor::ops::{conv2d, conv2d_gemm, conv2d_gemm_buf, ConvWorkspace};
use eyecod_tensor::quant::{
    qconv2d_requant, qconv2d_requant_reference, qlinear, qlinear_reference, QTensor,
};
use eyecod_tensor::{simd, Shape, Tensor};
use serde::Serialize;
use std::path::Path;
use std::time::Instant;

fn mat(rows: usize, cols: usize, seed: u64) -> Mat {
    Mat::from_fn(rows, cols, |r, c| {
        let x = (r * cols + c) as u64 ^ seed.wrapping_mul(0x9E37_79B9);
        (x % 1013) as f64 / 1013.0 - 0.5
    })
}

fn tensor(shape: Shape, seed: u64) -> Tensor {
    Tensor::from_fn(shape, |n, c, h, w| {
        let x = (((n * 31 + c) * 37 + h) * 41 + w) as u64 ^ seed;
        (x % 613) as f32 / 613.0 - 0.5
    })
}

fn bench(c: &mut Criterion) {
    // f64 GEMM, blocked vs naive, at the Tikhonov reconstruction shapes
    // (working size 48/64, paper scale 256/320) and the 96×160 gaze ROI
    for (m, k, n, tag) in [
        (48, 64, 64, "recon_48x64x64"),
        (256, 320, 320, "recon_256x320x320"),
        (96, 160, 96, "gaze_96x160x96"),
    ] {
        let a = mat(m, k, 1);
        let b = mat(k, n, 2);
        c.bench_function(&format!("kernels/gemm_naive_{tag}"), |bch| {
            bch.iter(|| a.matmul_naive(&b))
        });
        c.bench_function(&format!("kernels/gemm_blocked_{tag}"), |bch| {
            bch.iter(|| a.matmul(&b))
        });
    }

    // conv-as-GEMM on a gaze-layer geometry: fresh buffers per call vs a
    // warm reusable workspace (the steady-state frame regime)
    let x = tensor(Shape::new(1, 16, 96, 160), 3);
    let w = tensor(Shape::new(16, 16, 3, 3), 4);
    c.bench_function("kernels/conv_gemm_alloc_16x96x160", |bch| {
        bch.iter(|| conv2d_gemm(&x, &w, None, 1, 1, 1))
    });
    let mut ws = ConvWorkspace::new();
    let mut out = Tensor::zeros(Shape::new(1, 1, 1, 1));
    c.bench_function("kernels/conv_gemm_workspace_16x96x160", |bch| {
        bch.iter(|| {
            let (patches, _, _) = ws.split();
            conv2d_gemm_buf(&x, &w, None, 1, 1, 1, patches, &mut out);
        })
    });
    // the direct (pre-GEMM) convolution as the reference point
    c.bench_function("kernels/conv_direct_16x96x160", |bch| {
        bch.iter(|| conv2d(&x, &w, None, 1, 1, 1))
    });

    // int8 kernels: runtime-dispatched (AVX2 where available) vs the
    // pinned-scalar reference, at gaze-chain geometries
    let (qx, qw, bias) = int8_conv_operands();
    c.bench_function("kernels/qconv_requant_scalar_16x48x64", |bch| {
        bch.iter(|| qconv2d_requant_reference(&qx, &qw, Some(&bias), 1, 1, 1, true, 0.05))
    });
    c.bench_function("kernels/qconv_requant_dispatch_16x48x64", |bch| {
        bch.iter(|| qconv2d_requant(&qx, &qw, Some(&bias), 1, 1, 1, true, 0.05))
    });
    let (lx, lw, lbias) = int8_linear_operands();
    c.bench_function("kernels/qlinear_scalar_64x1024", |bch| {
        bch.iter(|| qlinear_reference(&lx, &lw, Some(&lbias)))
    });
    c.bench_function("kernels/qlinear_dispatch_64x1024", |bch| {
        bch.iter(|| qlinear(&lx, &lw, Some(&lbias)))
    });
}

/// Int8 conv operands at a gaze-chain-like dense 3×3 geometry.
fn int8_conv_operands() -> (QTensor, QTensor, Vec<f32>) {
    let qx = QTensor::quantize(&tensor(Shape::new(1, 16, 48, 64), 5));
    let qw = QTensor::quantize(&tensor(Shape::new(16, 16, 3, 3), 6));
    let bias: Vec<f32> = (0..16).map(|i| (i as f32 - 8.0) / 16.0).collect();
    (qx, qw, bias)
}

/// Int8 depthwise conv operands (one tap stream per channel).
fn int8_depthwise_operands() -> (QTensor, QTensor, Vec<f32>) {
    let qx = QTensor::quantize(&tensor(Shape::new(1, 32, 48, 64), 7));
    let qw = QTensor::quantize(&tensor(Shape::new(32, 1, 3, 3), 8));
    let bias: Vec<f32> = (0..32).map(|i| (i as f32 - 16.0) / 32.0).collect();
    (qx, qw, bias)
}

/// Int8 FC operands at a gaze-head-like reduction (64 outputs over K=1024).
fn int8_linear_operands() -> (QTensor, QTensor, Vec<f32>) {
    let lx = QTensor::quantize(&tensor(Shape::new(4, 1, 1, 1024), 9));
    let lw = QTensor::quantize(&tensor(Shape::vector(64, 1024), 10));
    let lbias: Vec<f32> = (0..64).map(|i| (i as f32 - 32.0) / 64.0).collect();
    (lx, lw, lbias)
}

#[derive(Serialize)]
struct KernelRow {
    kernel: &'static str,
    shape: String,
    naive_ns: u64,
    blocked_ns: u64,
    speedup: f64,
    /// Logical CPUs visible to this run — kernel timings on a shared or
    /// single-core host are not comparable to a dedicated many-core box.
    host_parallelism: usize,
    note: String,
}

fn host_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, |p| p.get())
}

/// Best-of-N wall time of `f` in nanoseconds.
fn best_of<R>(iters: usize, mut f: impl FnMut() -> R) -> u64 {
    f(); // warm caches and buffers
    (0..iters)
        .map(|_| {
            let t0 = Instant::now();
            std::hint::black_box(f());
            t0.elapsed().as_nanos() as u64
        })
        .min()
        .unwrap()
}

fn write_kernel_artifact() {
    let mut rows = Vec::new();
    for (m, k, n, tag) in [
        (48, 64, 64, "recon working size (scene 48, sensor 64)"),
        (256, 320, 320, "recon paper scale (scene 256, sensor 320)"),
        (96, 160, 96, "gaze ROI 96x160"),
    ] {
        let a = mat(m, k, 1);
        let b = mat(k, n, 2);
        let naive_ns = best_of(15, || a.matmul_naive(&b));
        let blocked_ns = best_of(15, || a.matmul(&b));
        rows.push(KernelRow {
            kernel: "f64 gemm",
            shape: format!("{m}x{k} * {k}x{n} ({tag})"),
            naive_ns,
            blocked_ns,
            speedup: naive_ns as f64 / blocked_ns as f64,
            host_parallelism: host_parallelism(),
            note: String::new(),
        });
    }

    // conv-as-GEMM through a warm workspace vs the direct convolution at a
    // gaze-layer geometry on the 96x160 ROI
    let x = tensor(Shape::new(1, 16, 96, 160), 3);
    let w = tensor(Shape::new(16, 16, 3, 3), 4);
    let direct_ns = best_of(15, || conv2d(&x, &w, None, 1, 1, 1));
    let mut ws = ConvWorkspace::new();
    let mut out = Tensor::zeros(Shape::new(1, 1, 1, 1));
    let gemm_ns = best_of(15, || {
        let (patches, _, _) = ws.split();
        conv2d_gemm_buf(&x, &w, None, 1, 1, 1, patches, &mut out);
    });
    rows.push(KernelRow {
        kernel: "f32 conv 3x3 (direct vs blocked im2col gemm)",
        shape: "(1,16,96,160) * (16,16,3,3)".into(),
        naive_ns: direct_ns,
        blocked_ns: gemm_ns,
        speedup: direct_ns as f64 / gemm_ns as f64,
        host_parallelism: host_parallelism(),
        note: String::new(),
    });

    // int8 kernels: scalar reference (naive_ns) vs runtime-dispatched
    // (blocked_ns), so the JSON records the measured AVX2 payoff — or, on
    // a host without AVX2, honestly reports speedup ≈ 1 with a note rather
    // than faking the number
    let simd_note = if !simd::avx2_supported() {
        "host has no AVX2: dispatched path is the scalar kernel".to_string()
    } else if !simd::avx2_enabled() {
        "EYECOD_NO_SIMD set: dispatched path is the scalar kernel".to_string()
    } else {
        String::new()
    };
    let (qx, qw, qbias) = int8_conv_operands();
    let scalar_ns = best_of(15, || {
        qconv2d_requant_reference(&qx, &qw, Some(&qbias), 1, 1, 1, true, 0.05)
    });
    let dispatch_ns = best_of(15, || {
        qconv2d_requant(&qx, &qw, Some(&qbias), 1, 1, 1, true, 0.05)
    });
    rows.push(KernelRow {
        kernel: "int8 qconv_requant 3x3 (scalar vs dispatched)",
        shape: "(1,16,48,64) * (16,16,3,3)".into(),
        naive_ns: scalar_ns,
        blocked_ns: dispatch_ns,
        speedup: scalar_ns as f64 / dispatch_ns as f64,
        host_parallelism: host_parallelism(),
        note: simd_note.clone(),
    });

    let (dx, dw, dbias) = int8_depthwise_operands();
    let scalar_ns = best_of(15, || {
        qconv2d_requant_reference(&dx, &dw, Some(&dbias), 1, 1, 32, true, 0.05)
    });
    let dispatch_ns = best_of(15, || {
        qconv2d_requant(&dx, &dw, Some(&dbias), 1, 1, 32, true, 0.05)
    });
    rows.push(KernelRow {
        kernel: "int8 qconv_requant depthwise 3x3 (scalar vs dispatched)",
        shape: "(1,32,48,64) * (32,1,3,3) g=32".into(),
        naive_ns: scalar_ns,
        blocked_ns: dispatch_ns,
        speedup: scalar_ns as f64 / dispatch_ns as f64,
        host_parallelism: host_parallelism(),
        note: simd_note.clone(),
    });

    let (lx, lw, lbias) = int8_linear_operands();
    let scalar_ns = best_of(15, || qlinear_reference(&lx, &lw, Some(&lbias)));
    let dispatch_ns = best_of(15, || qlinear(&lx, &lw, Some(&lbias)));
    rows.push(KernelRow {
        kernel: "int8 qlinear (scalar vs dispatched)",
        shape: "(4,1024) * (64,1024)".into(),
        naive_ns: scalar_ns,
        blocked_ns: dispatch_ns,
        speedup: scalar_ns as f64 / dispatch_ns as f64,
        host_parallelism: host_parallelism(),
        note: simd_note,
    });

    let root = Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));
    eyecod_bench::reporting::write_json(root, "BENCH_kernels", &rows);
    for r in &rows {
        println!(
            "{:<48} {:>12} ns -> {:>12} ns   {:.2}x",
            r.shape, r.naive_ns, r.blocked_ns, r.speedup
        );
    }
}

criterion_group!(benches, bench);

fn main() {
    // `--artifact-only` skips criterion (CI smoke / artifact refresh)
    if !std::env::args().any(|a| a == "--artifact-only") {
        benches();
        Criterion::default().final_summary();
    }
    write_kernel_artifact();
}
