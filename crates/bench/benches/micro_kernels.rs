//! Component micro-benchmarks: the computational kernels every experiment
//! rests on (convolutions, quantised convolution, FlatCam capture and
//! reconstruction, SVD, eye rendering).

use criterion::{criterion_group, criterion_main, Criterion};
use eyecod_eyedata::render::{render_eye, EyeParams};
use eyecod_optics::imaging::FlatCam;
use eyecod_optics::mask::SeparableMask;
use eyecod_optics::mat::Mat;
use eyecod_optics::recon::TikhonovReconstructor;
use eyecod_optics::sensor::SensorModel;
use eyecod_optics::svd::Svd;
use eyecod_tensor::ops::{conv2d, matmul};
use eyecod_tensor::quant::{qconv2d, QTensor};
use eyecod_tensor::{Shape, Tensor};

fn bench(c: &mut Criterion) {
    // convolution kernels at FBNet-like shapes
    let x = Tensor::ones(Shape::new(1, 24, 24, 40));
    let w_pw = Tensor::ones(Shape::new(144, 24, 1, 1));
    c.bench_function("kernels/pointwise_conv_24x40", |b| {
        b.iter(|| conv2d(&x, &w_pw, None, 1, 0, 1))
    });
    let w_dw = Tensor::ones(Shape::new(24, 1, 3, 3));
    c.bench_function("kernels/depthwise_conv_24x40", |b| {
        b.iter(|| conv2d(&x, &w_dw, None, 1, 1, 24))
    });
    let qx = QTensor::quantize(&x);
    let qw = QTensor::quantize(&w_dw);
    c.bench_function("kernels/depthwise_qconv_int8", |b| {
        b.iter(|| qconv2d(&qx, &qw, None, 1, 1, 24))
    });

    // matmul at reconstruction shapes
    let a = Tensor::ones(Shape::vector(64, 96));
    let bm = Tensor::ones(Shape::vector(96, 64));
    c.bench_function("kernels/matmul_64x96x64", |b| b.iter(|| matmul(&a, &bm)));

    // optics: capture + reconstruction at the pipeline's working size
    let mask = SeparableMask::mls_differential(64, 48, 7);
    let cam = FlatCam::new(mask.clone(), SensorModel::nir_eye_tracking());
    let scene = Mat::from_fn(48, 48, |r, c| ((r * c) % 13) as f64 / 13.0);
    c.bench_function("optics/flatcam_capture_48", |b| {
        b.iter(|| cam.capture(&scene, 3))
    });
    let recon = TikhonovReconstructor::new(&mask, 1e-3);
    let y = cam.capture(&scene, 3);
    c.bench_function("optics/tikhonov_reconstruct_48", |b| {
        b.iter(|| recon.reconstruct(&y))
    });
    c.bench_function("optics/jacobi_svd_64x48", |b| {
        b.iter(|| Svd::compute(mask.phi_l()))
    });

    // data: eye rendering
    c.bench_function("data/render_eye_48", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            render_eye(&EyeParams::centered(48), 48, seed)
        })
    });
}

/// The seed repo's `parallel_map`: fresh threads spawned per call, every
/// result funnelled through one shared mutex. Kept here verbatim (on std
/// scoped threads) as the baseline the work-stealing pool replaced. The
/// thread count is a parameter so the comparison pits equal participant
/// counts against each other regardless of the host's core count.
fn mutex_parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;
    let threads = threads.min(items.len().max(1));
    if threads <= 1 || items.len() < 4 {
        return items.iter().map(&f).collect();
    }
    let results: Mutex<Vec<Option<R>>> = Mutex::new((0..items.len()).map(|_| None).collect());
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(&items[i]);
                results.lock().unwrap()[i] = Some(r);
            });
        }
    });
    results
        .into_inner()
        .unwrap()
        .into_iter()
        .map(|r| r.expect("all slots filled"))
        .collect()
}

/// Dataset-scale parallel execution strategies: sequential, the seed's
/// spawn-per-call/mutex-per-item map, and the reusable work-stealing pool,
/// at matched participant counts (4 vs 3 workers + the caller).
///
/// Two workloads: a 64-item batch of FlatCam Tikhonov reconstructions at
/// the working scene size (the pipeline's real fan-out unit, compute
/// bound), and a 4096-item batch of single reconstruction *rows* (fine
/// grained, where per-item locking and per-call spawning dominate — the
/// overhead the pool eliminates).
fn heavy_compute(c: &mut Criterion) {
    const PARTICIPANTS: usize = 4;
    let pool = eyecod_pool::ThreadPool::with_threads(PARTICIPANTS - 1);

    let mask = SeparableMask::mls_differential(64, 48, 7);
    let cam = FlatCam::new(mask.clone(), SensorModel::nir_eye_tracking());
    let recon = TikhonovReconstructor::new(&mask, 1e-3);
    let measurements: Vec<Mat> = (0..64)
        .map(|i| {
            let scene = Mat::from_fn(48, 48, |r, c| (((r + i) * (c + 3)) % 17) as f64 / 17.0);
            cam.capture(&scene, i as u64)
        })
        .collect();

    c.bench_function("parallel/recon64_sequential", |b| {
        b.iter(|| {
            measurements
                .iter()
                .map(|m| recon.reconstruct(m))
                .collect::<Vec<_>>()
        })
    });
    c.bench_function("parallel/recon64_mutex_per_item", |b| {
        b.iter(|| mutex_parallel_map(&measurements, PARTICIPANTS, |m| recon.reconstruct(m)))
    });
    c.bench_function("parallel/recon64_work_stealing", |b| {
        b.iter(|| pool.parallel_map_chunked(&measurements, 1, |m| recon.reconstruct(m)))
    });

    // fine-grained: one Ŷ-row back-projection per item
    let y = &measurements[0];
    let rows: Vec<usize> = (0..4096).map(|i| i % 48).collect();
    let row_job = |&r: &usize| -> f64 {
        let mut acc = 0.0;
        for c in 0..y.cols() {
            acc += y.at(r % y.rows(), c) * (c as f64 + 1.0);
        }
        acc
    };
    c.bench_function("parallel/rows4096_sequential", |b| {
        b.iter(|| rows.iter().map(row_job).collect::<Vec<_>>())
    });
    c.bench_function("parallel/rows4096_mutex_per_item", |b| {
        b.iter(|| mutex_parallel_map(&rows, PARTICIPANTS, row_job))
    });
    c.bench_function("parallel/rows4096_work_stealing", |b| {
        b.iter(|| pool.parallel_map(&rows, row_job))
    });
}

/// The deployed gaze backends head to head: the trained-architecture f32
/// forward vs the calibrated int8 chain on the same input, plus the one-off
/// fold-calibrate-quantise cost the tracker pays at the warm-up switchover.
fn int8_backend(c: &mut Criterion) {
    use eyecod_models::proxy::{GazeFamily, ProxyGazeNet};
    use eyecod_models::quantized::QuantizedGazeNet;
    use eyecod_tensor::Layer;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let mut rng = StdRng::seed_from_u64(7);
    let mut net = ProxyGazeNet::new(GazeFamily::FbnetLike, &mut rng);
    let calib = Tensor::from_fn(Shape::new(8, 1, 24, 32), |n, _, h, w| {
        ((n + h * 3 + w) % 13) as f32 / 13.0
    });
    let qnet = QuantizedGazeNet::from_calibrated(&net, &calib);
    let input = Tensor::from_fn(Shape::new(1, 1, 24, 32), |_, _, h, w| {
        ((h * 5 + w) % 11) as f32 / 11.0
    });

    c.bench_function("int8/gaze_forward_f32", |b| {
        b.iter(|| net.forward(&input, false))
    });
    c.bench_function("int8/gaze_forward_int8", |b| {
        b.iter(|| qnet.forward(&input))
    });
    c.bench_function("int8/fold_calibrate_quantize", |b| {
        b.iter(|| QuantizedGazeNet::from_calibrated(&net, &calib))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench
}
criterion_group! {
    name = heavy;
    config = Criterion::default().sample_size(30);
    targets = heavy_compute
}
criterion_group! {
    name = int8;
    config = Criterion::default().sample_size(30);
    targets = int8_backend
}
criterion_main!(benches, heavy, int8);
