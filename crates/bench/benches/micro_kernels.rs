//! Component micro-benchmarks: the computational kernels every experiment
//! rests on (convolutions, quantised convolution, FlatCam capture and
//! reconstruction, SVD, eye rendering).

use criterion::{criterion_group, criterion_main, Criterion};
use eyecod_eyedata::render::{render_eye, EyeParams};
use eyecod_optics::imaging::FlatCam;
use eyecod_optics::mask::SeparableMask;
use eyecod_optics::mat::Mat;
use eyecod_optics::recon::TikhonovReconstructor;
use eyecod_optics::sensor::SensorModel;
use eyecod_optics::svd::Svd;
use eyecod_tensor::ops::{conv2d, matmul};
use eyecod_tensor::quant::{qconv2d, QTensor};
use eyecod_tensor::{Shape, Tensor};

fn bench(c: &mut Criterion) {
    // convolution kernels at FBNet-like shapes
    let x = Tensor::ones(Shape::new(1, 24, 24, 40));
    let w_pw = Tensor::ones(Shape::new(144, 24, 1, 1));
    c.bench_function("kernels/pointwise_conv_24x40", |b| {
        b.iter(|| conv2d(&x, &w_pw, None, 1, 0, 1))
    });
    let w_dw = Tensor::ones(Shape::new(24, 1, 3, 3));
    c.bench_function("kernels/depthwise_conv_24x40", |b| {
        b.iter(|| conv2d(&x, &w_dw, None, 1, 1, 24))
    });
    let qx = QTensor::quantize(&x);
    let qw = QTensor::quantize(&w_dw);
    c.bench_function("kernels/depthwise_qconv_int8", |b| {
        b.iter(|| qconv2d(&qx, &qw, None, 1, 1, 24))
    });

    // matmul at reconstruction shapes
    let a = Tensor::ones(Shape::vector(64, 96));
    let bm = Tensor::ones(Shape::vector(96, 64));
    c.bench_function("kernels/matmul_64x96x64", |b| b.iter(|| matmul(&a, &bm)));

    // optics: capture + reconstruction at the pipeline's working size
    let mask = SeparableMask::mls_differential(64, 48, 7);
    let cam = FlatCam::new(mask.clone(), SensorModel::nir_eye_tracking());
    let scene = Mat::from_fn(48, 48, |r, c| ((r * c) % 13) as f64 / 13.0);
    c.bench_function("optics/flatcam_capture_48", |b| {
        b.iter(|| cam.capture(&scene, 3))
    });
    let recon = TikhonovReconstructor::new(&mask, 1e-3);
    let y = cam.capture(&scene, 3);
    c.bench_function("optics/tikhonov_reconstruct_48", |b| {
        b.iter(|| recon.reconstruct(&y))
    });
    c.bench_function("optics/jacobi_svd_64x48", |b| {
        b.iter(|| Svd::compute(mask.phi_l()))
    });

    // data: eye rendering
    c.bench_function("data/render_eye_48", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            render_eye(&EyeParams::centered(48), 48, seed)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench
}
criterion_main!(benches);
