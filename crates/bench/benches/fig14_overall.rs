//! Fig. 14 — overall throughput and normalised energy efficiency of EyeCoD
//! against EdgeCPU / CPU / EdgeGPU / GPU / CIS-GEP.

use criterion::{criterion_group, criterion_main, Criterion};
use eyecod_bench::experiments::fig14_overall;
use eyecod_bench::reporting::print_table;
use eyecod_platforms::system::compare_all;

fn print_figure() {
    let rows = fig14_overall();
    print_table(
        "Fig. 14 — overall comparison",
        &["platform", "FPS", "frames/J", "norm. energy eff."],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.name.clone(),
                    format!("{:.2}", r.fps),
                    format!("{:.1}", r.frames_per_joule),
                    format!("{:.4}", r.norm_energy_eff),
                ]
            })
            .collect::<Vec<_>>(),
    );
    let e = rows.last().unwrap().fps;
    println!(
        "paper speedups: EdgeCPU 2966.65x, CPU 12.75x, EdgeGPU 14.83x, GPU 2.61x, CIS-GEP 12.86x"
    );
    print!("measured:       ");
    for r in rows.iter().filter(|r| r.name != "EyeCoD") {
        print!("{} {:.2}x, ", r.name, e / r.fps);
    }
    let cis = rows.iter().find(|r| r.name == "CIS-GEP").unwrap();
    println!(
        "\nenergy eff. over CIS-GEP: measured {:.2}x (paper 8.81x)",
        rows.last().unwrap().frames_per_joule / cis.frames_per_joule
    );
}

fn bench(c: &mut Criterion) {
    print_figure();
    c.bench_function("fig14/full_comparison", |b| b.iter(compare_all));
}

criterion_group!(benches, bench);
criterion_main!(benches);
