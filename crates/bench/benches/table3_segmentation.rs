//! Table 3 — segmentation performance across resolution, precision and
//! camera (origin vs FlatCam images).

use criterion::{criterion_group, criterion_main, Criterion};
use eyecod_bench::experiments::{table3_segmentation, Scale};
use eyecod_bench::reporting::print_table;
use eyecod_models::proxy::{predict_seg, ProxySegNet};
use eyecod_tensor::{Shape, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn print_rows() {
    let rows = table3_segmentation(Scale::Quick);
    print_table(
        "Table 3 — segmentation mIOU (proxy) + FLOPs (full spec @ paper res)",
        &[
            "model",
            "proxy res",
            "mIOU origin",
            "mIOU FlatCam",
            "FLOPs (G)",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.model.clone(),
                    format!("{0}x{0}", r.resolution),
                    format!("{:.3}", r.miou_origin),
                    format!("{:.3}", r.miou_flatcam),
                    format!("{:.2}", r.flops_g),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!("paper (mIOU%): U-net 93.3/92.5 | RITNet@512 95.1/93.6 | @256 94.7/93.8 | @256-8b 94.0/92.8 | @128 94.1/93.5 | @128-8b 93.3/92.7");
}

fn bench(c: &mut Criterion) {
    print_rows();
    let mut rng = StdRng::seed_from_u64(0);
    let mut net = ProxySegNet::new(8, &mut rng);
    for res in [12usize, 24, 48] {
        let input = Tensor::ones(Shape::new(1, 1, res, res));
        c.bench_function(&format!("table3/seg_inference_{res}x{res}"), |b| {
            b.iter(|| predict_seg(&mut net, &input))
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
