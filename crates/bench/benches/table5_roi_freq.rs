//! Table 5 — ROI refresh frequency and ROI size ablation over live
//! eye-motion sequences, plus the per-frame tracking kernel.

use criterion::{criterion_group, criterion_main, Criterion};
use eyecod_bench::experiments::{table5_roi_freq, Scale};
use eyecod_bench::reporting::print_table;
use eyecod_core::tracker::{EyeTracker, TrackerConfig};
use eyecod_core::training::{train_tracker_models, TrainingSetup};
use eyecod_eyedata::render::{render_eye, EyeParams};

fn print_rows() {
    let rows = table5_roi_freq(Scale::Quick);
    print_table(
        "Table 5 — ROI frequency & size ablation",
        &[
            "period",
            "ROI",
            "paper ROI",
            "error (deg)",
            "gaze MFLOPs/f",
            "seg MFLOPs/f",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.roi_period.to_string(),
                    r.roi_size.clone(),
                    r.paper_roi.clone(),
                    format!("{:.2}", r.error_deg),
                    format!("{:.1}", r.gaze_mflops_per_frame),
                    format!("{:.1}", r.seg_mflops_per_frame),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!("paper: freq 25/50/100 @96x160 -> 3.23/3.23/3.34 deg; sizes 48x80/96x160/144x240 @50 -> 3.60/3.23/3.19 deg");
}

fn bench(c: &mut Criterion) {
    print_rows();
    let config = TrackerConfig::small();
    let models = train_tracker_models(&TrainingSetup::quick(), &config);
    let mut tracker = EyeTracker::new(config.clone(), models);
    let sample = render_eye(
        &EyeParams::centered(config.scene_size),
        config.scene_size,
        1,
    );
    c.bench_function("table5/process_frame", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            tracker.process_frame(&sample.image, seed)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
