//! Serving-layer benchmarks: full serve-tick throughput and the
//! cross-session gaze micro-batching payoff.
//!
//! Two outputs:
//!
//! * `serve/*` criterion groups for interactive comparison
//!   (`cargo bench -p eyecod-bench --bench serve`);
//! * a `BENCH_serve.json` artifact at the repository root with one row per
//!   fleet size {1, 16, 256}: best-of-N serve-tick wall time / FPS, and
//!   the gaze-forward throughput of one batched GEMM against the same
//!   crops forwarded one session at a time — the record behind the
//!   "batched ≥ 1.2× per-session at 256 sessions" acceptance line.

use criterion::{criterion_group, Criterion};
use eyecod_core::tracker::{GazeBackend, TrackerConfig};
use eyecod_core::training::{train_tracker_models, TrackerModels, TrainingSetup};
use eyecod_eyedata::render::{render_eye, EyeParams};
use eyecod_faults::FaultPlan;
use eyecod_models::infer::GazeInferWorkspace;
use eyecod_serve::{ServeConfig, ServeRegistry, SessionId};
use eyecod_tensor::{Shape, Tensor};
use serde::Serialize;
use std::path::Path;
use std::sync::OnceLock;
use std::time::Instant;

const FLEETS: [usize; 3] = [1, 16, 256];

fn shared() -> &'static (TrackerConfig, TrackerModels, Tensor) {
    static SHARED: OnceLock<(TrackerConfig, TrackerModels, Tensor)> = OnceLock::new();
    SHARED.get_or_init(|| {
        let cfg = TrackerConfig::small();
        let models = train_tracker_models(&TrainingSetup::quick(), &cfg);
        let scene = render_eye(&EyeParams::centered(cfg.scene_size), cfg.scene_size, 0).image;
        (cfg, models, scene)
    })
}

/// A warm fleet: `n` sessions (alternating f32/int8), fed and ticked past
/// ROI refresh and int8 calibration so measured ticks are steady-state.
fn warm_fleet(n: usize, batching: bool) -> (ServeRegistry, Vec<SessionId>) {
    let (cfg, models, scene) = shared();
    let mut sc = ServeConfig::new(cfg.clone());
    sc.batching = batching;
    sc.queue_capacity = 4;
    let mut reg = ServeRegistry::new(sc, models.clone_models()).with_faults(FaultPlan::none());
    let ids: Vec<_> = (0..n)
        .map(|s| {
            let backend = if s % 2 == 0 {
                GazeBackend::F32
            } else {
                GazeBackend::Int8
            };
            reg.create_with_backend(backend).unwrap()
        })
        .collect();
    for round in 0..12u64 {
        for id in &ids {
            reg.feed(*id, scene, round).unwrap();
        }
        reg.tick();
    }
    (reg, ids)
}

fn bench(c: &mut Criterion) {
    let (_, _, scene) = shared();
    for n in FLEETS {
        let (mut reg, ids) = warm_fleet(n, true);
        let mut round = 100u64;
        c.bench_function(&format!("serve/tick_{n}_sessions"), |bch| {
            bch.iter(|| {
                for id in &ids {
                    reg.feed(*id, scene, round).unwrap();
                }
                round += 1;
                reg.tick()
            })
        });
    }
}

/// Best-of-N wall time of `f` in nanoseconds.
fn best_of<R>(iters: usize, mut f: impl FnMut() -> R) -> u64 {
    f(); // warm caches and buffers
    (0..iters)
        .map(|_| {
            let t0 = Instant::now();
            std::hint::black_box(f());
            t0.elapsed().as_nanos() as u64
        })
        .min()
        .unwrap()
}

#[derive(Serialize)]
struct ServeRow {
    sessions: usize,
    /// Best-of-N steady-state serve tick (batching on), full pipeline:
    /// stage + parallel prepare + batched forwards + completion.
    tick_ns: u64,
    /// Frames per second the tick sustains at this fleet size.
    tick_fps: f64,
    /// One batched gaze GEMM over all `sessions` crops.
    batched_gaze_ns: u64,
    /// The same crops forwarded one at a time (the per-session regime
    /// micro-batching replaces).
    per_session_gaze_ns: u64,
    gaze_speedup: f64,
    note: String,
}

fn write_serve_artifact() {
    let (cfg, models, _) = shared();
    let (gh, gw) = cfg.gaze_input;
    let mut rows = Vec::new();
    for n in FLEETS {
        // full serve-tick throughput through a warm registry
        let (mut reg, ids) = warm_fleet(n, true);
        let (_, _, scene) = shared();
        let mut round = 100u64;
        let tick_ns = best_of(12, || {
            for id in &ids {
                reg.feed(*id, scene, round).unwrap();
            }
            round += 1;
            reg.tick()
        });
        let tick_fps = n as f64 * 1e9 / tick_ns as f64;

        // the gaze-forward payoff in isolation: one batched GEMM over the
        // fleet's crops vs the same crops forwarded one session at a time
        let crops = Tensor::from_fn(Shape::new(n, 1, gh, gw), |i, _, h, w| {
            (((i * 31 + h) * 37 + w) % 613) as f32 / 613.0 - 0.5
        });
        let mut ws = GazeInferWorkspace::new();
        let mut out = Tensor::zeros(Shape::new(1, 1, 1, 1));
        let batched_gaze_ns = best_of(12, || {
            models.gaze.forward_infer(&crops, &mut ws, &mut out);
        });
        let mut one = Tensor::zeros(Shape::new(1, 1, gh, gw));
        let mut out1 = Tensor::zeros(Shape::new(1, 1, 1, 1));
        let item = gh * gw;
        let per_session_gaze_ns = best_of(12, || {
            for i in 0..n {
                one.as_mut_slice()
                    .copy_from_slice(&crops.as_slice()[i * item..(i + 1) * item]);
                models.gaze.forward_infer(&one, &mut ws, &mut out1);
            }
        });
        let gaze_speedup = per_session_gaze_ns as f64 / batched_gaze_ns as f64;
        let note = if n >= 256 && gaze_speedup < 1.2 {
            format!(
                "batched {gaze_speedup:.2}x below the 1.2x line: single-core host \
                 ({} available), so batching can only amortise per-forward overhead, \
                 not add parallel lanes",
                std::thread::available_parallelism().map_or(1, |p| p.get())
            )
        } else {
            String::new()
        };
        rows.push(ServeRow {
            sessions: n,
            tick_ns,
            tick_fps,
            batched_gaze_ns,
            per_session_gaze_ns,
            gaze_speedup,
            note,
        });
    }

    let root = Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));
    eyecod_bench::reporting::write_json(root, "BENCH_serve", &rows);
    for r in &rows {
        println!(
            "{:>4} sessions: tick {:>12} ns ({:>10.1} fps)   gaze batched {:>12} ns vs per-session {:>12} ns   {:.2}x {}",
            r.sessions, r.tick_ns, r.tick_fps, r.batched_gaze_ns, r.per_session_gaze_ns, r.gaze_speedup, r.note
        );
    }
}

criterion_group!(benches, bench);

fn main() {
    // `--artifact-only` skips criterion (CI smoke / artifact refresh)
    if !std::env::args().any(|a| a == "--artifact-only") {
        benches();
        Criterion::default().final_summary();
    }
    write_serve_artifact();
}
