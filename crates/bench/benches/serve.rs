//! Serving-layer benchmarks: serve-tick throughput under all three tick
//! modes and the cross-session gaze micro-batching payoff.
//!
//! Two outputs:
//!
//! * `serve/schedule_{n}/{seq,par,scheduled}` criterion groups for
//!   interactive comparison (`cargo bench -p eyecod-bench --bench serve`);
//! * a `BENCH_serve.json` artifact at the repository root with one row per
//!   fleet size {1, 16, 256}: best-of-N steady-state tick wall time / FPS
//!   for the sequential AoS reference, the batched tick, and the columnar
//!   scheduled tick, plus the gaze-forward throughput of one batched GEMM
//!   against the same crops forwarded one session at a time — the record
//!   behind the "batched ≥ 1.2× per-session at 256 sessions" acceptance
//!   line. Every row carries `host_parallelism` and a non-empty `note`
//!   saying what the numbers mean on *this* host: tick-mode deltas are a
//!   function of worker count, so a 1-core container's seq ≈ par ≈ sched
//!   is expected, not a regression.

use criterion::{criterion_group, Criterion};
use eyecod_core::tracker::{GazeBackend, TrackerConfig};
use eyecod_core::training::{train_tracker_models, TrackerModels, TrainingSetup};
use eyecod_eyedata::render::{render_eye, EyeParams};
use eyecod_faults::FaultPlan;
use eyecod_models::infer::GazeInferWorkspace;
use eyecod_serve::{ServeConfig, ServeRegistry, SessionId, TickMode};
use eyecod_tensor::{Shape, Tensor};
use serde::Serialize;
use std::path::Path;
use std::sync::OnceLock;
use std::time::Instant;

const FLEETS: [usize; 3] = [1, 16, 256];
const MODES: [(TickMode, &str); 3] = [
    (TickMode::Sequential, "seq"),
    (TickMode::Batched, "par"),
    (TickMode::Scheduled, "scheduled"),
];

fn shared() -> &'static (TrackerConfig, TrackerModels, Tensor) {
    static SHARED: OnceLock<(TrackerConfig, TrackerModels, Tensor)> = OnceLock::new();
    SHARED.get_or_init(|| {
        let cfg = TrackerConfig::small();
        let models = train_tracker_models(&TrainingSetup::quick(), &cfg);
        let scene = render_eye(&EyeParams::centered(cfg.scene_size), cfg.scene_size, 0).image;
        (cfg, models, scene)
    })
}

fn host_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, |p| p.get())
}

/// A warm fleet: `n` sessions (alternating f32/int8), fed and ticked past
/// ROI refresh and int8 calibration so measured ticks are steady-state.
fn warm_fleet(n: usize, mode: TickMode) -> (ServeRegistry, Vec<SessionId>) {
    let (cfg, models, scene) = shared();
    let mut sc = ServeConfig::new(cfg.clone());
    sc.mode = mode;
    sc.queue_capacity = 4;
    let mut reg = ServeRegistry::new(sc, models.clone_models()).with_faults(FaultPlan::none());
    let ids: Vec<_> = (0..n)
        .map(|s| {
            let backend = if s % 2 == 0 {
                GazeBackend::F32
            } else {
                GazeBackend::Int8
            };
            reg.create_with_backend(backend).unwrap()
        })
        .collect();
    for round in 0..12u64 {
        for id in &ids {
            reg.feed(*id, scene, round).unwrap();
        }
        reg.tick();
    }
    (reg, ids)
}

fn bench(c: &mut Criterion) {
    let (_, _, scene) = shared();
    for n in FLEETS {
        for (mode, tag) in MODES {
            let (mut reg, ids) = warm_fleet(n, mode);
            let mut round = 100u64;
            c.bench_function(&format!("serve/schedule_{n}/{tag}"), |bch| {
                bch.iter(|| {
                    for id in &ids {
                        reg.feed(*id, scene, round).unwrap();
                    }
                    round += 1;
                    reg.tick()
                })
            });
        }
    }
}

/// Best-of-N wall time of `f` in nanoseconds.
fn best_of<R>(iters: usize, mut f: impl FnMut() -> R) -> u64 {
    f(); // warm caches and buffers
    (0..iters)
        .map(|_| {
            let t0 = Instant::now();
            std::hint::black_box(f());
            t0.elapsed().as_nanos() as u64
        })
        .min()
        .unwrap()
}

/// Best-of-N steady-state serve tick through a warm registry.
fn measure_tick(n: usize, mode: TickMode) -> u64 {
    let (_, _, scene) = shared();
    let (mut reg, ids) = warm_fleet(n, mode);
    let mut round = 100u64;
    best_of(12, || {
        for id in &ids {
            reg.feed(*id, scene, round).unwrap();
        }
        round += 1;
        reg.tick()
    })
}

#[derive(Serialize)]
struct ServeRow {
    sessions: usize,
    /// Sequential AoS reference tick: every stage inline, one session at a
    /// time — the semantics every other mode is pinned against.
    seq_tick_ns: u64,
    seq_fps: f64,
    /// Batched tick: pooled per-session prepare + cross-session batched
    /// gaze forwards.
    par_tick_ns: u64,
    par_fps: f64,
    /// Columnar scheduled tick: per-stage batch kernels pipelined across
    /// session shards (the Act-GB-style stage wavefront).
    sched_tick_ns: u64,
    sched_fps: f64,
    /// One batched gaze GEMM over all `sessions` crops.
    batched_gaze_ns: u64,
    /// The same crops forwarded one at a time (the per-session regime
    /// micro-batching replaces).
    per_session_gaze_ns: u64,
    gaze_speedup: f64,
    /// Logical CPUs visible to this run. Tick-mode deltas scale with pool
    /// workers, so rows from hosts with different parallelism are not
    /// comparable.
    host_parallelism: usize,
    /// Always non-empty: how to read this row on this host.
    note: String,
}

fn write_serve_artifact() {
    let (cfg, models, _) = shared();
    let (gh, gw) = cfg.gaze_input;
    let cores = host_parallelism();
    let mut rows = Vec::new();
    for n in FLEETS {
        let seq_tick_ns = measure_tick(n, TickMode::Sequential);
        let par_tick_ns = measure_tick(n, TickMode::Batched);
        let sched_tick_ns = measure_tick(n, TickMode::Scheduled);

        // the gaze-forward payoff in isolation: one batched GEMM over the
        // fleet's crops vs the same crops forwarded one session at a time
        let crops = Tensor::from_fn(Shape::new(n, 1, gh, gw), |i, _, h, w| {
            (((i * 31 + h) * 37 + w) % 613) as f32 / 613.0 - 0.5
        });
        let mut ws = GazeInferWorkspace::new();
        let mut out = Tensor::zeros(Shape::new(1, 1, 1, 1));
        let batched_gaze_ns = best_of(12, || {
            models.gaze.forward_infer(&crops, &mut ws, &mut out);
        });
        let mut one = Tensor::zeros(Shape::new(1, 1, gh, gw));
        let mut out1 = Tensor::zeros(Shape::new(1, 1, 1, 1));
        let item = gh * gw;
        let per_session_gaze_ns = best_of(12, || {
            for i in 0..n {
                one.as_mut_slice()
                    .copy_from_slice(&crops.as_slice()[i * item..(i + 1) * item]);
                models.gaze.forward_infer(&one, &mut ws, &mut out1);
            }
        });
        let gaze_speedup = per_session_gaze_ns as f64 / batched_gaze_ns as f64;
        let mut note = format!(
            "{cores}-core host: tick-mode deltas scale with pool workers \
             (seq is the single-thread reference)"
        );
        if n >= 256 && gaze_speedup < 1.2 {
            note.push_str(&format!(
                "; batched gaze {gaze_speedup:.2}x below the 1.2x line: batching can \
                 only amortise per-forward overhead here, not add parallel lanes"
            ));
        }
        rows.push(ServeRow {
            sessions: n,
            seq_tick_ns,
            seq_fps: n as f64 * 1e9 / seq_tick_ns as f64,
            par_tick_ns,
            par_fps: n as f64 * 1e9 / par_tick_ns as f64,
            sched_tick_ns,
            sched_fps: n as f64 * 1e9 / sched_tick_ns as f64,
            batched_gaze_ns,
            per_session_gaze_ns,
            gaze_speedup,
            host_parallelism: cores,
            note,
        });
    }

    let root = Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));
    eyecod_bench::reporting::write_json(root, "BENCH_serve", &rows);
    for r in &rows {
        println!(
            "{:>4} sessions: seq {:>12} ns ({:>10.1} fps)  par {:>12} ns ({:>10.1} fps)  sched {:>12} ns ({:>10.1} fps)  gaze batched {:.2}x",
            r.sessions,
            r.seq_tick_ns,
            r.seq_fps,
            r.par_tick_ns,
            r.par_fps,
            r.sched_tick_ns,
            r.sched_fps,
            r.gaze_speedup
        );
    }
}

criterion_group!(benches, bench);

fn main() {
    // `--artifact-only` skips criterion (CI smoke / artifact refresh)
    if !std::env::args().any(|a| a == "--artifact-only") {
        benches();
        Criterion::default().final_summary();
    }
    write_serve_artifact();
}
