//! # eyecod-telemetry
//!
//! Observability substrate for the EyeCoD pipeline: lock-light [`Counter`]s,
//! fixed-bucket [`Histogram`]s with atomic buckets (no allocation on the
//! record path), scoped [`StageTimer`] guards, and a process-wide
//! [`Registry`] whose [`Snapshot`]s serialise to JSON and merge across
//! processes.
//!
//! The paper argues EyeCoD (and its successors i-FlatCam and JaneEye)
//! entirely in per-frame stage-level numbers — Fig. 14's breakdown of
//! communication, reconstruction, segmentation and gaze estimation. This
//! crate gives the reproduction the same per-stage view of where a frame's
//! time actually goes, so every perf PR has a measured before/after story.
//!
//! ## Switches
//!
//! Telemetry is on by default and can be disabled at two levels:
//!
//! * **Compile time** — building with `--no-default-features` (dropping the
//!   `enabled` cargo feature) turns every record path into a constant no-op
//!   that the optimiser deletes entirely.
//! * **Run time** — setting `EYECOD_TELEMETRY=0` (or `false`/`off`) in the
//!   environment short-circuits recording behind one relaxed atomic load.
//!   [`set_enabled`] flips the same switch programmatically.
//!
//! ## Usage
//!
//! ```
//! use eyecod_telemetry as telemetry;
//!
//! // Counters and histograms are registered by name on first use; the
//! // `static_*!` macros cache the handle so steady-state recording is
//! // lock-free.
//! telemetry::static_counter!("demo/frames").inc();
//! {
//!     let _t = telemetry::static_histogram!("demo/stage_ns").timer();
//!     // ... timed work ...
//! }
//! let snapshot = telemetry::global().snapshot();
//! println!("{}", snapshot.to_json());
//! ```

mod metric;
mod registry;
mod snapshot;

pub use metric::{
    bucket_index, bucket_lower_bound, bucket_upper_bound, Counter, Histogram, StageTimer, BUCKETS,
};
pub use registry::{counter, global, histogram, Registry};
pub use snapshot::{CounterSnapshot, HistogramSnapshot, Snapshot};

use std::sync::atomic::{AtomicU8, Ordering};

/// Tri-state runtime switch: 0 = uninitialised (read the environment),
/// 1 = enabled, 2 = disabled.
static RUNTIME_ENABLED: AtomicU8 = AtomicU8::new(0);

#[cfg(feature = "enabled")]
#[cold]
fn init_runtime_enabled() -> bool {
    let on = match std::env::var("EYECOD_TELEMETRY") {
        Ok(v) => !matches!(v.trim(), "0" | "false" | "off" | "no"),
        Err(_) => true,
    };
    RUNTIME_ENABLED.store(if on { 1 } else { 2 }, Ordering::Relaxed);
    on
}

/// Whether recording is live. Constant `false` when the crate is built
/// without the `enabled` feature; otherwise one relaxed atomic load.
#[inline(always)]
pub fn enabled() -> bool {
    #[cfg(not(feature = "enabled"))]
    {
        false
    }
    #[cfg(feature = "enabled")]
    {
        match RUNTIME_ENABLED.load(Ordering::Relaxed) {
            1 => true,
            2 => false,
            _ => init_runtime_enabled(),
        }
    }
}

/// Flips the runtime switch (overriding `EYECOD_TELEMETRY`). A no-op in
/// builds without the `enabled` feature. Primarily for tests and for tools
/// like the bench reporter's `--telemetry` flag.
pub fn set_enabled(on: bool) {
    RUNTIME_ENABLED.store(if on { 1 } else { 2 }, Ordering::Relaxed);
}

/// A [`Counter`] handle from the [`global`] registry, cached in a hidden
/// `OnceLock` so only the first execution touches the registry lock.
#[macro_export]
macro_rules! static_counter {
    ($name:expr) => {{
        static CELL: ::std::sync::OnceLock<::std::sync::Arc<$crate::Counter>> =
            ::std::sync::OnceLock::new();
        ::std::sync::Arc::as_ref(CELL.get_or_init(|| $crate::counter($name)))
    }};
}

/// A [`Histogram`] handle from the [`global`] registry, cached in a hidden
/// `OnceLock` so only the first execution touches the registry lock.
#[macro_export]
macro_rules! static_histogram {
    ($name:expr) => {{
        static CELL: ::std::sync::OnceLock<::std::sync::Arc<$crate::Histogram>> =
            ::std::sync::OnceLock::new();
        ::std::sync::Arc::as_ref(CELL.get_or_init(|| $crate::histogram($name)))
    }};
}
