//! Point-in-time metric snapshots: serialisable, mergeable, quantile-aware.

use crate::metric::{bucket_lower_bound, bucket_upper_bound, BUCKETS};
use serde::{Deserialize, Serialize};

/// One counter's value at snapshot time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// Registered metric name.
    pub name: String,
    /// Counter value.
    pub value: u64,
}

/// One histogram's state at snapshot time.
///
/// `buckets` is sparse: `(index, count)` pairs, ascending by index, zero
/// buckets omitted; bucket `index` spans
/// `[bucket_lower_bound(index), bucket_upper_bound(index)]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Registered metric name (unit suffix by convention: `_ns`, `_cycles`).
    pub name: String,
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Smallest observed value (0 when empty).
    pub min: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
    /// Sparse `(bucket index, count)` pairs, ascending by index.
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramSnapshot {
    /// Mean observed value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum as f64 / self.count as f64
    }

    /// Estimated `q`-quantile (`0.0 ..= 1.0`): the midpoint of the bucket
    /// holding the `ceil(q·count)`-th observation, clamped to the observed
    /// `[min, max]` range. Exact to within a factor of 2 by construction;
    /// `q = 0.0` and `q = 1.0` return the exact observed min and max.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `0.0 ..= 1.0`.
    pub fn quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
        if self.count == 0 {
            return 0;
        }
        if q == 0.0 {
            return self.min;
        }
        if q == 1.0 {
            return self.max;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for &(i, n) in &self.buckets {
            cumulative += n;
            if cumulative >= target {
                let (lo, hi) = (
                    bucket_lower_bound(i as usize),
                    bucket_upper_bound(i as usize),
                );
                let mid = lo + (hi - lo) / 2;
                return mid.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Estimated median.
    pub fn median(&self) -> u64 {
        self.quantile(0.5)
    }

    /// Estimated 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Folds `other` into `self` (bucket-wise sum; min/max combine).
    ///
    /// # Panics
    ///
    /// Panics if the names differ or a bucket index is out of range.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        assert_eq!(self.name, other.name, "cannot merge different histograms");
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        let mut dense = [0u64; BUCKETS];
        for &(i, n) in self.buckets.iter().chain(&other.buckets) {
            dense[i as usize] += n;
        }
        self.buckets = dense
            .iter()
            .enumerate()
            .filter_map(|(i, &n)| (n > 0).then_some((i as u32, n)))
            .collect();
    }
}

/// A full registry snapshot: every non-zero metric, sorted by name.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    /// All non-zero counters.
    pub counters: Vec<CounterSnapshot>,
    /// All non-empty histograms.
    pub histograms: Vec<HistogramSnapshot>,
}

impl Snapshot {
    /// Counter value by name, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Histogram by name, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }

    /// Folds `other` into `self` by metric name — the aggregation path for
    /// snapshots collected from several processes or runs.
    pub fn merge(&mut self, other: &Snapshot) {
        for c in &other.counters {
            match self.counters.iter_mut().find(|m| m.name == c.name) {
                Some(m) => m.value += c.value,
                None => self.counters.push(c.clone()),
            }
        }
        for h in &other.histograms {
            match self.histograms.iter_mut().find(|m| m.name == h.name) {
                Some(m) => m.merge(h),
                None => self.histograms.push(h.clone()),
            }
        }
        self.counters.sort_by(|a, b| a.name.cmp(&b.name));
        self.histograms.sort_by(|a, b| a.name.cmp(&b.name));
    }

    /// The sub-snapshot of metrics whose names start with `prefix` — e.g.
    /// `with_prefix("serve/")` isolates the serving layer's fleet metrics
    /// from the per-tracker ones when reporting or asserting on them.
    pub fn with_prefix(&self, prefix: &str) -> Snapshot {
        Snapshot {
            counters: self
                .counters
                .iter()
                .filter(|c| c.name.starts_with(prefix))
                .cloned()
                .collect(),
            histograms: self
                .histograms
                .iter()
                .filter(|h| h.name.starts_with(prefix))
                .cloned()
                .collect(),
        }
    }

    /// Pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("snapshots always serialise")
    }

    /// Parses a snapshot back from [`Snapshot::to_json`] output.
    pub fn from_json(json: &str) -> Result<Self, serde::Error> {
        serde_json::from_str(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist(name: &str, values: &[u64]) -> HistogramSnapshot {
        let h = crate::Histogram::new();
        for &v in values {
            h.record(v);
        }
        h.snapshot(name)
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn quantiles_bracket_the_data() {
        crate::set_enabled(true);
        let s = hist("t", &[10, 10, 10, 10, 10, 10, 10, 10, 10, 5000]);
        // the median bucket holds 10; the estimate is clamped into [min,max]
        let med = s.median();
        assert!((10..=15).contains(&med), "median estimate {med}");
        // p99 must land in the outlier's bucket (4096..8191), clamped to max
        let p99 = s.p99();
        assert!(p99 > 1000, "p99 estimate {p99} should see the outlier");
        assert!(p99 <= 5000);
        assert_eq!(s.quantile(0.0), 10);
        assert_eq!(s.quantile(1.0), p99);
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn merge_is_equivalent_to_recording_everything_in_one_histogram() {
        crate::set_enabled(true);
        let a_vals = [1u64, 2, 3, 100, 7];
        let b_vals = [4u64, 1_000_000, 9];
        let mut a = hist("t", &a_vals);
        let b = hist("t", &b_vals);
        let all: Vec<u64> = a_vals.iter().chain(&b_vals).copied().collect();
        let both = hist("t", &all);
        a.merge(&b);
        assert_eq!(a, both);
        // merging an empty histogram is a no-op
        let mut c = both.clone();
        c.merge(&hist("t", &[]));
        assert_eq!(c, both);
        // merging into an empty histogram copies
        let mut d = hist("t", &[]);
        d.merge(&both);
        assert_eq!(d, both);
    }

    #[test]
    #[should_panic(expected = "cannot merge different histograms")]
    fn merge_rejects_mismatched_names() {
        let mut a = HistogramSnapshot {
            name: "a".into(),
            count: 1,
            sum: 1,
            min: 1,
            max: 1,
            buckets: vec![(0, 1)],
        };
        let b = HistogramSnapshot {
            name: "b".into(),
            ..a.clone()
        };
        a.merge(&b);
    }

    #[test]
    fn empty_snapshot_reports_empty() {
        let s = Snapshot::default();
        assert!(s.is_empty());
        assert_eq!(s.counter("x"), None);
        assert!(s.histogram("y").is_none());
    }
}
