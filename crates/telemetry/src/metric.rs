//! Counters, histograms and stage timers — the record-path primitives.
//!
//! Everything here is wait-free on the record path: plain relaxed atomic
//! arithmetic on pre-allocated fields, no locks, no allocation. Relaxed
//! ordering is deliberate — metrics tolerate momentary cross-field skew
//! (a reader may see a bucket increment before the matching `count`), and
//! snapshots are taken at rest in practice.

use crate::snapshot::{CounterSnapshot, HistogramSnapshot};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Number of histogram buckets. Bucket `i` spans
/// `[bucket_lower_bound(i), bucket_upper_bound(i)]`, doubling per bucket,
/// so 64 buckets cover the whole `u64` range — sub-nanosecond resolution is
/// pointless and the top buckets are unreachable wall-clock, but a fixed
/// power-of-two layout keeps indexing branch-free.
pub const BUCKETS: usize = 64;

/// The bucket a value lands in: `floor(log2(max(v, 1)))`.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    (63 - (value | 1).leading_zeros()) as usize
}

/// Smallest value of bucket `i` (0 for bucket 0, else `2^i`).
#[inline]
pub fn bucket_lower_bound(i: usize) -> u64 {
    debug_assert!(i < BUCKETS);
    if i == 0 {
        0
    } else {
        1u64 << i
    }
}

/// Largest value of bucket `i` (inclusive): `2^(i+1) - 1`.
#[inline]
pub fn bucket_upper_bound(i: usize) -> u64 {
    debug_assert!(i < BUCKETS);
    if i == BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << (i + 1)) - 1
    }
}

/// A monotonically increasing (or gauge-settable) `u64` event counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A fresh counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to the counter (no-op while telemetry is disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one (no-op while telemetry is disabled).
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Overwrites the value — gauge semantics, e.g. a worker count (no-op
    /// while telemetry is disabled).
    #[inline]
    pub fn set(&self, v: u64) {
        if crate::enabled() {
            self.value.store(v, Ordering::Relaxed);
        }
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Zeroes the counter regardless of the enabled switch.
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }

    pub fn snapshot(&self, name: &str) -> CounterSnapshot {
        CounterSnapshot {
            name: name.to_string(),
            value: self.get(),
        }
    }
}

/// A fixed-bucket histogram: 64 power-of-two buckets plus count / sum /
/// min / max, all atomic. Values are unit-agnostic `u64`s; by convention
/// names carry the unit as a suffix (`*_ns` for nanoseconds, `*_cycles`
/// for simulated cycles).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation (no-op while telemetry is disabled).
    #[inline]
    pub fn record(&self, value: u64) {
        if !crate::enabled() {
            return;
        }
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Starts a scoped timer that records elapsed nanoseconds into this
    /// histogram when dropped. While telemetry is disabled the timer never
    /// reads the clock.
    #[inline]
    pub fn timer(&self) -> StageTimer<'_> {
        StageTimer {
            hist: self,
            start: crate::enabled().then(Instant::now),
        }
    }

    /// Times `f`, recording its wall time in nanoseconds.
    #[inline]
    pub fn time<R>(&self, f: impl FnOnce() -> R) -> R {
        let _t = self.timer();
        f()
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Zeroes every field regardless of the enabled switch.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }

    pub fn snapshot(&self, name: &str) -> HistogramSnapshot {
        let count = self.count();
        let buckets: Vec<(u32, u64)> = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then_some((i as u32, n))
            })
            .collect();
        HistogramSnapshot {
            name: name.to_string(),
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// A scoped stage timer: created via [`Histogram::timer`], records the
/// elapsed wall time (nanoseconds, saturating) into its histogram on drop.
#[must_use = "a StageTimer measures until it is dropped; binding it to `_` drops it immediately"]
pub struct StageTimer<'a> {
    hist: &'a Histogram,
    start: Option<Instant>,
}

impl StageTimer<'_> {
    /// Stops the timer early and returns the elapsed nanoseconds it
    /// recorded (`None` while telemetry is disabled).
    pub fn stop(mut self) -> Option<u64> {
        let ns = self.observe();
        self.start = None; // disarm the drop
        ns
    }

    fn observe(&self) -> Option<u64> {
        let start = self.start?;
        let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.hist.record(ns);
        Some(ns)
    }
}

impl Drop for StageTimer<'_> {
    fn drop(&mut self) {
        self.observe();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(1023), 9);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(u64::MAX), 63);
        for i in 0..BUCKETS {
            assert_eq!(bucket_index(bucket_lower_bound(i).max(1)), i);
            assert_eq!(bucket_index(bucket_upper_bound(i)), i);
            if i + 1 < BUCKETS {
                assert_eq!(bucket_upper_bound(i) + 1, bucket_lower_bound(i + 1));
            }
        }
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn histogram_tracks_count_sum_min_max() {
        crate::set_enabled(true);
        let h = Histogram::new();
        for v in [3u64, 9, 1000, 9] {
            h.record(v);
        }
        let s = h.snapshot("t");
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 1021);
        assert_eq!(s.min, 3);
        assert_eq!(s.max, 1000);
        let total: u64 = s.buckets.iter().map(|(_, n)| n).sum();
        assert_eq!(total, 4);
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn timer_records_into_histogram() {
        crate::set_enabled(true);
        let h = Histogram::new();
        let t = h.timer();
        std::hint::black_box(1 + 1);
        let ns = t.stop().expect("enabled timer reports elapsed ns");
        assert_eq!(h.count(), 1);
        assert!(ns < 1_000_000_000, "a no-op should not take a second");
        h.time(|| ());
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn empty_histogram_snapshot_is_clean() {
        let h = Histogram::new();
        let s = h.snapshot("t");
        assert_eq!((s.count, s.sum, s.min, s.max), (0, 0, 0, 0));
        assert!(s.buckets.is_empty());
    }
}
