//! The process-wide metric registry.
//!
//! Registration (first use of a name) takes a mutex; steady-state recording
//! happens through `Arc` handles the call sites cache — see the
//! [`static_counter!`](crate::static_counter) /
//! [`static_histogram!`](crate::static_histogram) macros — so the lock is
//! off the hot path by construction.

use crate::metric::{Counter, Histogram};
use crate::snapshot::Snapshot;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

/// A named collection of counters and histograms.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl Registry {
    /// An empty registry (tests; production code uses [`global`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter registered under `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        Arc::clone(
            lock(&self.counters)
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Counter::new())),
        )
    }

    /// The histogram registered under `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        Arc::clone(
            lock(&self.histograms)
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::new())),
        )
    }

    /// A point-in-time copy of every metric with at least one recorded
    /// event. Zero metrics are omitted so a disabled run snapshots empty.
    pub fn snapshot(&self) -> Snapshot {
        let counters = lock(&self.counters)
            .iter()
            .filter(|(_, c)| c.get() > 0)
            .map(|(name, c)| c.snapshot(name))
            .collect();
        let histograms = lock(&self.histograms)
            .iter()
            .filter(|(_, h)| h.count() > 0)
            .map(|(name, h)| h.snapshot(name))
            .collect();
        Snapshot {
            counters,
            histograms,
        }
    }

    /// Zeroes every registered metric in place. Handles cached by call
    /// sites stay valid — this resets values, it does not drop metrics.
    pub fn reset(&self) {
        for c in lock(&self.counters).values() {
            c.reset();
        }
        for h in lock(&self.histograms).values() {
            h.reset();
        }
    }
}

/// The process-wide registry every instrumented crate records into.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// [`Registry::counter`] on the [`global`] registry.
pub fn counter(name: &str) -> Arc<Counter> {
    global().counter(name)
}

/// [`Registry::histogram`] on the [`global`] registry.
pub fn histogram(name: &str) -> Arc<Histogram> {
    global().histogram(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_returns_same_metric() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        assert!(Arc::ptr_eq(&a, &b));
        let h1 = r.histogram("y");
        let h2 = r.histogram("y");
        assert!(Arc::ptr_eq(&h1, &h2));
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn snapshot_omits_zero_metrics_and_reset_clears() {
        crate::set_enabled(true);
        let r = Registry::new();
        r.counter("zero");
        r.histogram("empty");
        r.counter("hits").add(3);
        r.histogram("lat").record(7);
        let s = r.snapshot();
        assert_eq!(s.counters.len(), 1);
        assert_eq!(s.counters[0].name, "hits");
        assert_eq!(s.histograms.len(), 1);
        assert_eq!(s.histograms[0].name, "lat");
        r.reset();
        let s = r.snapshot();
        assert!(s.counters.is_empty() && s.histograms.is_empty());
    }
}
