//! Property and integration tests for the telemetry layer.
//!
//! Recording tests force the runtime toggle on with [`eyecod_telemetry::set_enabled`]
//! so they stay meaningful under the `EYECOD_TELEMETRY=0` CI job, and are gated
//! on the `enabled` cargo feature so `--no-default-features` builds compile.

use eyecod_telemetry::{
    bucket_index, bucket_lower_bound, bucket_upper_bound, Histogram, Snapshot, BUCKETS,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every value lands in exactly the bucket whose bounds bracket it.
    #[test]
    fn bucket_bounds_bracket_every_value(v in any::<u64>()) {
        let i = bucket_index(v);
        prop_assert!(i < BUCKETS);
        prop_assert!(bucket_lower_bound(i) <= v.max(1));
        prop_assert!(v <= bucket_upper_bound(i));
    }

    /// Bucket bounds tile the u64 range with no gaps or overlaps.
    #[test]
    fn bucket_bounds_tile_contiguously(i in 0usize..BUCKETS - 1) {
        prop_assert_eq!(bucket_upper_bound(i) + 1, bucket_lower_bound(i + 1));
    }
}

#[cfg(feature = "enabled")]
mod recording {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Histogram count/sum/min/max agree with a direct fold of the values.
        /// Values are bounded so the reference `sum` cannot overflow.
        #[test]
        fn histogram_totals_match_direct_fold(values in proptest::collection::vec(0u64..=u64::MAX / 64, 1..64usize)) {
            eyecod_telemetry::set_enabled(true);
            let h = Histogram::new();
            for &v in &values {
                h.record(v);
            }
            let s = h.snapshot("t");
            prop_assert_eq!(s.count, values.len() as u64);
            prop_assert_eq!(s.sum, values.iter().sum::<u64>());
            prop_assert_eq!(s.min, *values.iter().min().unwrap());
            prop_assert_eq!(s.max, *values.iter().max().unwrap());
            let bucket_total: u64 = s.buckets.iter().map(|&(_, n)| n).sum();
            prop_assert_eq!(bucket_total, s.count);
        }

        /// Snapshots survive a JSON round-trip bit-for-bit.
        #[test]
        fn snapshot_json_round_trips(values in proptest::collection::vec(any::<u64>(), 0..32)) {
            eyecod_telemetry::set_enabled(true);
            let h = Histogram::new();
            for &v in &values {
                h.record(v);
            }
            let mut snap = Snapshot::default();
            if h.count() > 0 {
                snap.histograms.push(h.snapshot("roundtrip_ns"));
            }
            let json = snap.to_json();
            let back = Snapshot::from_json(&json).expect("parse back");
            prop_assert_eq!(back, snap);
        }
    }

    /// Concurrent recording from pooled workers loses no observations.
    #[test]
    fn concurrent_recording_from_pool_totals_correctly() {
        eyecod_telemetry::set_enabled(true);
        let pool = eyecod_pool::ThreadPool::with_threads(4);
        let h = Histogram::new();
        let sum = AtomicU64::new(0);
        const N: usize = 10_000;
        pool.parallel_for_chunked(N, 64, |i| {
            h.record(i as u64);
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        let s = h.snapshot("pool_ns");
        assert_eq!(s.count, N as u64);
        assert_eq!(s.sum, sum.load(Ordering::Relaxed));
        assert_eq!(s.min, 0);
        assert_eq!(s.max, (N - 1) as u64);
        assert_eq!(s.buckets.iter().map(|&(_, n)| n).sum::<u64>(), N as u64);
    }

    /// Registry-level snapshot merge aggregates by name across snapshots.
    #[test]
    fn snapshot_merge_aggregates_by_name() {
        eyecod_telemetry::set_enabled(true);
        let reg_a = eyecod_telemetry::Registry::new();
        let reg_b = eyecod_telemetry::Registry::new();
        reg_a.counter("shared").add(3);
        reg_b.counter("shared").add(4);
        reg_b.counter("only_b").inc();
        reg_a.histogram("lat_ns").record(8);
        reg_b.histogram("lat_ns").record(32);
        let mut merged = reg_a.snapshot();
        merged.merge(&reg_b.snapshot());
        assert_eq!(merged.counter("shared"), Some(7));
        assert_eq!(merged.counter("only_b"), Some(1));
        let h = merged.histogram("lat_ns").expect("merged histogram");
        assert_eq!(h.count, 2);
        assert_eq!((h.min, h.max), (8, 32));
    }
}
