//! Disabled-mode contract: with telemetry off, the record path is a no-op
//! and snapshots come back empty. Runs in its own test binary (own process)
//! so the global toggle cannot race with the recording tests.

use eyecod_telemetry::{global, Histogram, StageTimer};

#[test]
fn disabled_mode_records_nothing() {
    eyecod_telemetry::set_enabled(false);
    assert!(!eyecod_telemetry::enabled());

    let c = global().counter("disabled/counter");
    c.inc();
    c.add(41);
    assert_eq!(c.get(), 0);

    let h = Histogram::new();
    h.record(123);
    {
        let timer: StageTimer<'_> = h.timer();
        drop(timer);
    }
    assert_eq!(h.count(), 0);

    let stage = global().histogram("disabled/stage_ns");
    stage.time(|| std::hint::black_box(7 * 6));
    assert_eq!(stage.count(), 0);

    let snap = global().snapshot();
    assert!(
        snap.is_empty(),
        "disabled run must snapshot empty: {snap:?}"
    );
    // an empty snapshot still round-trips through JSON
    let back = eyecod_telemetry::Snapshot::from_json(&snap.to_json()).unwrap();
    assert!(back.is_empty());
}
