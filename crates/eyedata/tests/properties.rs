//! Property-based tests of the synthetic eye data contracts.

use eyecod_eyedata::augment::flip_horizontal;
use eyecod_eyedata::labels::{class_centroid, class_histogram, mean_iou, SegClass};
use eyecod_eyedata::render::{render_eye, EyeParams};
use eyecod_eyedata::sequence::EyeMotionGenerator;
use eyecod_eyedata::GazeVector;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any random plausible eye renders with intact anatomy: all classes
    /// present, pupil inside iris inside the opening, pupil darker than
    /// sclera.
    #[test]
    fn rendered_anatomy_is_consistent(seed in 0u64..300) {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = EyeParams::random(&mut rng);
        let size = 48;
        let s = render_eye(&p, size, seed);
        let hist = class_histogram(&s.labels);
        for (c, &count) in hist.iter().enumerate() {
            prop_assert!(count > 0, "class {c} missing");
        }
        // pupil centroid ~ iris centroid (concentric discs)
        let (py, px) = class_centroid(&s.labels, size, size, SegClass::Pupil).unwrap();
        let (iy, ix) = class_centroid(&s.labels, size, size, SegClass::Iris).unwrap();
        prop_assert!((py - iy).abs() < 3.0 && (px - ix).abs() < 3.0);
        // mean intensity ordering: pupil < iris < sclera. The specular
        // glint overwrites intensity (0.98) without relabelling, and on a
        // small pupil a couple of glint pixels can outweigh the dark disc —
        // so the anatomy ordering is checked with glint pixels masked out.
        let mean_of = |class: SegClass| {
            let mut sum = 0.0f32;
            let mut n = 0;
            for y in 0..size {
                for x in 0..size {
                    let v = s.image.at(0, 0, y, x);
                    if s.labels[y * size + x] == class as u8 && v < 0.9 {
                        sum += v;
                        n += 1;
                    }
                }
            }
            sum / n.max(1) as f32
        };
        prop_assert!(mean_of(SegClass::Pupil) < mean_of(SegClass::Iris));
        prop_assert!(mean_of(SegClass::Iris) < mean_of(SegClass::Sclera));
    }

    /// The gaze vector geometrically matches the rendered pupil offset:
    /// more positive yaw puts the pupil further right of the eye centre.
    #[test]
    fn gaze_and_pupil_offset_agree(yaw_deg in -20f32..20.0) {
        let mut p = EyeParams::centered(64);
        p.yaw = yaw_deg.to_radians();
        let s = render_eye(&p, 64, 0);
        let (_, px) = class_centroid(&s.labels, 64, 64, SegClass::Pupil).unwrap();
        let offset = px - 32.0;
        if yaw_deg > 8.0 {
            prop_assert!(offset > 0.5, "yaw {yaw_deg} gave offset {offset}");
        } else if yaw_deg < -8.0 {
            prop_assert!(offset < -0.5, "yaw {yaw_deg} gave offset {offset}");
        }
        prop_assert!((s.gaze.yaw() - p.yaw).abs() < 1e-5);
    }

    /// Mirror augmentation: involution, mIOU-1 with its own double flip,
    /// yaw negation, and label histogram preservation.
    #[test]
    fn flip_contract(seed in 0u64..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = EyeParams::random(&mut rng);
        let s = render_eye(&p, 32, seed);
        let f = flip_horizontal(&s);
        prop_assert_eq!(class_histogram(&s.labels), class_histogram(&f.labels));
        prop_assert!((f.gaze.x + s.gaze.x).abs() < 1e-6);
        let ff = flip_horizontal(&f);
        prop_assert!((mean_iou(&ff.labels, &s.labels) - 1.0).abs() < 1e-6);
    }

    /// Motion sequences keep every frame renderable and in gaze bounds,
    /// for any seed.
    #[test]
    fn motion_stays_valid(seed in 0u64..100) {
        let mut gen = EyeMotionGenerator::with_seed(seed);
        for p in gen.take_frames(120) {
            p.validate();
            let g = p.gaze();
            prop_assert!((g.norm() - 1.0).abs() < 1e-5);
            prop_assert!(g.z > 0.0, "gaze must stay towards the camera");
        }
    }

    /// Angular error is a metric-like quantity: symmetric, zero on self,
    /// bounded by 180°.
    #[test]
    fn angular_error_is_metric_like(
        y1 in -0.4f32..0.4, p1 in -0.4f32..0.4,
        y2 in -0.4f32..0.4, p2 in -0.4f32..0.4,
    ) {
        let a = GazeVector::from_angles(y1, p1);
        let b = GazeVector::from_angles(y2, p2);
        prop_assert!(a.angular_error_degrees(&a) < 1e-3);
        let ab = a.angular_error_degrees(&b);
        let ba = b.angular_error_degrees(&a);
        prop_assert!((ab - ba).abs() < 1e-3);
        prop_assert!((0.0..=180.0).contains(&ab));
    }
}
