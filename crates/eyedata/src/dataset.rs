//! Dataset assembly: batches of rendered eyes with segmentation and gaze
//! supervision, standing in for OpenEDS2019/2020.

use crate::gaze::GazeVector;
use crate::render::{render_eye, EyeParams};
use eyecod_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One supervised sample: image, dense labels, gaze, and the generating
/// parameters (kept for oracle evaluations and debugging).
#[derive(Debug, Clone)]
pub struct Sample {
    /// Grayscale image `(1, 1, S, S)`.
    pub image: Tensor,
    /// Per-pixel class indices, row-major `(y, x)`, length `S * S`.
    pub labels: Vec<u8>,
    /// Ground-truth 3-D gaze vector.
    pub gaze: GazeVector,
    /// The renderer parameters that produced this sample.
    pub params: EyeParams,
}

/// A finite dataset of rendered eyes with a train/validation split.
#[derive(Debug, Clone)]
pub struct Dataset {
    samples: Vec<Sample>,
    train_len: usize,
    size: usize,
}

impl Dataset {
    /// Generates `n` independent random samples at `size × size` resolution,
    /// holding out `val_fraction` of them for validation.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `size == 0` or `val_fraction` is outside `[0, 1)`.
    pub fn generate(n: usize, size: usize, val_fraction: f32, seed: u64) -> Self {
        assert!(n > 0, "dataset must be non-empty");
        assert!(size > 0, "image size must be non-zero");
        assert!(
            (0.0..1.0).contains(&val_fraction),
            "val_fraction must be in [0, 1)"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let samples: Vec<Sample> = (0..n)
            .map(|i| {
                let params = EyeParams::random(&mut rng);
                render_eye(&params, size, seed.wrapping_add(i as u64))
            })
            .collect();
        let val_len = ((n as f32) * val_fraction).round() as usize;
        Dataset {
            samples,
            train_len: n - val_len,
            size,
        }
    }

    /// Image resolution.
    pub fn image_size(&self) -> usize {
        self.size
    }

    /// The training samples.
    pub fn train(&self) -> &[Sample] {
        &self.samples[..self.train_len]
    }

    /// The validation samples.
    pub fn val(&self) -> &[Sample] {
        &self.samples[self.train_len..]
    }

    /// All samples.
    pub fn all(&self) -> &[Sample] {
        &self.samples
    }

    /// Stacks a slice of samples into batch tensors:
    /// `(images (N,1,S,S), flat labels, gazes (N,3,1,1))`.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn batch(samples: &[Sample]) -> (Tensor, Vec<usize>, Tensor) {
        assert!(!samples.is_empty(), "cannot batch zero samples");
        let images: Vec<Tensor> = samples.iter().map(|s| s.image.clone()).collect();
        let labels: Vec<usize> = samples
            .iter()
            .flat_map(|s| s.labels.iter().map(|&l| l as usize))
            .collect();
        let gazes: Vec<GazeVector> = samples.iter().map(|s| s.gaze).collect();
        (
            Tensor::stack(&images),
            labels,
            GazeVector::batch_to_tensor(&gazes),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_sizes_add_up() {
        let d = Dataset::generate(20, 16, 0.25, 1);
        assert_eq!(d.train().len(), 15);
        assert_eq!(d.val().len(), 5);
        assert_eq!(d.all().len(), 20);
        assert_eq!(d.image_size(), 16);
    }

    #[test]
    fn generation_is_reproducible() {
        let a = Dataset::generate(4, 16, 0.0, 9);
        let b = Dataset::generate(4, 16, 0.0, 9);
        for (x, y) in a.all().iter().zip(b.all()) {
            assert_eq!(x.image, y.image);
            assert_eq!(x.labels, y.labels);
        }
    }

    #[test]
    fn samples_are_diverse() {
        let d = Dataset::generate(6, 16, 0.0, 2);
        let first = &d.all()[0];
        assert!(d.all().iter().skip(1).any(|s| s.params != first.params));
    }

    #[test]
    fn batch_shapes() {
        let d = Dataset::generate(5, 16, 0.2, 3);
        let (imgs, labels, gazes) = Dataset::batch(d.train());
        assert_eq!(imgs.shape().dims(), (4, 1, 16, 16));
        assert_eq!(labels.len(), 4 * 16 * 16);
        assert_eq!(gazes.shape().dims(), (4, 3, 1, 1));
    }

    #[test]
    #[should_panic(expected = "cannot batch zero")]
    fn batch_rejects_empty() {
        Dataset::batch(&[]);
    }
}
