//! # eyecod-eyedata
//!
//! Synthetic eye-image dataset substrate for the EyeCoD reproduction.
//!
//! The paper trains and evaluates on Meta's OpenEDS2019 (segmentation) and
//! OpenEDS2020 (gaze) datasets, which are licensed and unavailable here. This
//! crate substitutes a *parametric synthetic eye renderer* that produces the
//! same supervision structure:
//!
//! * near-infrared-style grayscale eye images (skin, sclera, iris, pupil,
//!   corneal glint, sensor noise),
//! * dense 4-class segmentation masks (the OpenEDS class set:
//!   background/skin, sclera, iris, pupil),
//! * 3-D gaze vectors,
//! * temporal sequences with slow eye-position drift and fast gaze saccades —
//!   the statistic that justifies the paper's "segment once every 50 frames"
//!   design (§4.3).
//!
//! # Example
//!
//! ```
//! use eyecod_eyedata::render::{EyeParams, render_eye};
//!
//! let params = EyeParams::centered(64);
//! let sample = render_eye(&params, 64, 123);
//! assert_eq!(sample.image.shape().dims(), (1, 1, 64, 64));
//! assert_eq!(sample.labels.len(), 64 * 64);
//! ```

pub mod augment;
pub mod dataset;
pub mod gaze;
pub mod labels;
pub mod noise;
pub mod render;
pub mod sequence;

pub use dataset::{Dataset, Sample};
pub use gaze::GazeVector;
pub use labels::SegClass;
pub use render::{render_eye, EyeParams};
pub use sequence::{ChangeMap, EyeMotionGenerator, MotionConfig, MotionPhase};
