//! Procedural value noise for skin/iris texture.

/// Deterministic hash of a 2-D lattice point plus seed, mapped to `[0, 1)`.
fn hash01(x: i64, y: i64, seed: u64) -> f32 {
    let mut h = seed ^ 0x9E37_79B9_7F4A_7C15;
    h = h.wrapping_add((x as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9));
    h ^= h >> 27;
    h = h.wrapping_add((y as u64).wrapping_mul(0x94D0_49BB_1331_11EB));
    h ^= h >> 31;
    h = h.wrapping_mul(0x2545_F491_4F6C_DD1D);
    ((h >> 40) as f32) / ((1u64 << 24) as f32)
}

fn smoothstep(t: f32) -> f32 {
    t * t * (3.0 - 2.0 * t)
}

/// Smooth 2-D value noise in `[0, 1]` at continuous coordinates `(x, y)`
/// with the given feature `scale` (larger scale = coarser features).
///
/// # Panics
///
/// Panics if `scale <= 0`.
pub fn value_noise(x: f32, y: f32, scale: f32, seed: u64) -> f32 {
    assert!(scale > 0.0, "noise scale must be positive");
    let fx = x / scale;
    let fy = y / scale;
    let x0 = fx.floor();
    let y0 = fy.floor();
    let tx = smoothstep(fx - x0);
    let ty = smoothstep(fy - y0);
    let (x0, y0) = (x0 as i64, y0 as i64);
    let v00 = hash01(x0, y0, seed);
    let v10 = hash01(x0 + 1, y0, seed);
    let v01 = hash01(x0, y0 + 1, seed);
    let v11 = hash01(x0 + 1, y0 + 1, seed);
    let a = v00 + (v10 - v00) * tx;
    let b = v01 + (v11 - v01) * tx;
    a + (b - a) * ty
}

/// Two-octave fractal value noise in `[0, 1]`.
pub fn fractal_noise(x: f32, y: f32, scale: f32, seed: u64) -> f32 {
    let base = value_noise(x, y, scale, seed);
    let detail = value_noise(x, y, scale * 0.5, seed.wrapping_add(1));
    (base * 0.7 + detail * 0.3).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noise_is_deterministic() {
        assert_eq!(value_noise(3.2, 7.9, 4.0, 5), value_noise(3.2, 7.9, 4.0, 5));
        assert_ne!(value_noise(3.2, 7.9, 4.0, 5), value_noise(3.2, 7.9, 4.0, 6));
    }

    #[test]
    fn noise_is_bounded() {
        for i in 0..200 {
            let v = fractal_noise(i as f32 * 0.37, i as f32 * 0.91, 5.0, 9);
            assert!((0.0..=1.0).contains(&v), "value {v}");
        }
    }

    #[test]
    fn noise_is_smooth_at_fine_steps() {
        let a = value_noise(10.0, 10.0, 8.0, 1);
        let b = value_noise(10.05, 10.0, 8.0, 1);
        assert!(
            (a - b).abs() < 0.05,
            "noise jumped {} over a tiny step",
            (a - b).abs()
        );
    }

    #[test]
    fn noise_varies_over_large_steps() {
        let mut distinct = std::collections::HashSet::new();
        for i in 0..50 {
            let v = value_noise(i as f32 * 13.0, i as f32 * 7.0, 4.0, 2);
            distinct.insert((v * 1000.0) as i32);
        }
        assert!(
            distinct.len() > 20,
            "noise too flat: {} values",
            distinct.len()
        );
    }
}
