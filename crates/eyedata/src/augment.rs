//! Label-consistent data augmentation.
//!
//! Horizontal mirroring is the one geometric augmentation that is exactly
//! label-preserving for eye images: the image and segmentation mask flip
//! left–right, and the gaze vector's horizontal component negates. (It also
//! converts left eyes into plausible right eyes, which is how OpenEDS-style
//! datasets are commonly doubled.)

use crate::dataset::Sample;
use crate::gaze::GazeVector;
use eyecod_tensor::Tensor;

/// Mirrors a sample horizontally: image columns, label columns and the
/// gaze x-component.
pub fn flip_horizontal(sample: &Sample) -> Sample {
    let s = sample.image.shape();
    let image = Tensor::from_fn(s, |n, c, y, x| sample.image.at(n, c, y, s.w - 1 - x));
    let mut labels = vec![0u8; sample.labels.len()];
    for y in 0..s.h {
        for x in 0..s.w {
            labels[y * s.w + x] = sample.labels[y * s.w + (s.w - 1 - x)];
        }
    }
    let gaze = GazeVector {
        x: -sample.gaze.x,
        y: sample.gaze.y,
        z: sample.gaze.z,
    };
    let mut params = sample.params.clone();
    params.yaw = -params.yaw;
    params.center_x = 1.0 - params.center_x;
    Sample {
        image,
        labels,
        gaze,
        params,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labels::{class_centroid, SegClass};
    use crate::render::{render_eye, EyeParams};

    #[test]
    fn double_flip_is_identity() {
        let s = render_eye(&EyeParams::centered(32), 32, 1);
        let back = flip_horizontal(&flip_horizontal(&s));
        assert_eq!(back.image, s.image);
        assert_eq!(back.labels, s.labels);
        assert!((back.gaze.x - s.gaze.x).abs() < 1e-7);
    }

    #[test]
    fn flip_mirrors_pupil_and_negates_yaw() {
        let mut p = EyeParams::centered(48);
        p.yaw = 15f32.to_radians();
        let s = render_eye(&p, 48, 2);
        let f = flip_horizontal(&s);
        let (_, px) = class_centroid(&s.labels, 48, 48, SegClass::Pupil).unwrap();
        let (_, fx) = class_centroid(&f.labels, 48, 48, SegClass::Pupil).unwrap();
        assert!(
            ((47.0 - px) - fx).abs() < 1.0,
            "pupil x {px} should mirror to {fx}"
        );
        assert!((f.gaze.x + s.gaze.x).abs() < 1e-6);
        assert!((f.gaze.z - s.gaze.z).abs() < 1e-6);
    }

    #[test]
    fn flipped_gaze_stays_unit() {
        let s = render_eye(&EyeParams::centered(24), 24, 3);
        assert!((flip_horizontal(&s).gaze.norm() - 1.0).abs() < 1e-5);
    }
}
