//! The parametric synthetic eye renderer.
//!
//! Renders near-infrared-style grayscale eye crops with dense 4-class
//! segmentation labels and a ground-truth 3-D gaze vector. The geometry is a
//! simple physically-motivated 2-D projection: the visible eye is an
//! elliptical palpebral opening in the skin; the iris/pupil discs translate
//! across the opening proportionally to gaze yaw/pitch (the projection of
//! the eyeball rotation); a specular glint rides near the cornea.

use crate::dataset::Sample;
use crate::gaze::GazeVector;
use crate::labels::SegClass;
use crate::noise::fractal_noise;
use eyecod_tensor::{Shape, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// All parameters of one rendered eye, in resolution-independent normalised
/// image coordinates (`[0, 1]` across both axes).
#[derive(Debug, Clone, PartialEq)]
pub struct EyeParams {
    /// Eye (palpebral opening) centre, vertical.
    pub center_y: f32,
    /// Eye centre, horizontal.
    pub center_x: f32,
    /// Half-width of the palpebral opening.
    pub eye_radius: f32,
    /// Vertical aperture as a fraction of `eye_radius` (blink state).
    pub openness: f32,
    /// Iris radius.
    pub iris_radius: f32,
    /// Pupil radius (must be smaller than the iris).
    pub pupil_radius: f32,
    /// Gaze yaw in radians (positive looks to the image right).
    pub yaw: f32,
    /// Gaze pitch in radians (positive looks down).
    pub pitch: f32,
    /// Base skin brightness in `[0, 1]`.
    pub skin_brightness: f32,
    /// Whether to render a corneal glint.
    pub glint: bool,
    /// Seed for procedural skin/iris texture.
    pub texture_seed: u64,
}

impl EyeParams {
    /// A centred, camera-facing eye with typical proportions — the
    /// quickstart configuration.
    pub fn centered(_size: usize) -> Self {
        EyeParams {
            center_y: 0.5,
            center_x: 0.5,
            eye_radius: 0.30,
            openness: 0.60,
            iris_radius: 0.13,
            pupil_radius: 0.055,
            yaw: 0.0,
            pitch: 0.0,
            skin_brightness: 0.55,
            glint: true,
            texture_seed: 0,
        }
    }

    /// Samples a random but anatomically plausible eye, with gaze angles up
    /// to ±25° and modest eye-position variation (mirroring the head-mount
    /// slippage OpenEDS captures exhibit).
    pub fn random(rng: &mut StdRng) -> Self {
        let max_angle = 25.0f32.to_radians();
        EyeParams {
            center_y: rng.gen_range(0.40..0.60),
            center_x: rng.gen_range(0.40..0.60),
            eye_radius: rng.gen_range(0.26..0.34),
            openness: rng.gen_range(0.45..0.75),
            iris_radius: rng.gen_range(0.11..0.15),
            pupil_radius: rng.gen_range(0.035..0.065),
            yaw: rng.gen_range(-max_angle..max_angle),
            pitch: rng.gen_range(-max_angle..max_angle),
            skin_brightness: rng.gen_range(0.45..0.65),
            glint: rng.gen_bool(0.9),
            texture_seed: rng.gen(),
        }
    }

    /// The ground-truth gaze vector for these parameters.
    pub fn gaze(&self) -> GazeVector {
        GazeVector::from_angles(self.yaw, self.pitch)
    }

    /// Projected iris centre in normalised coordinates: the eyeball rotation
    /// translates the iris across the opening.
    pub fn iris_center(&self) -> (f32, f32) {
        // effective eyeball radius in normalised units
        let k = 0.17;
        (
            self.center_y + k * self.pitch.sin(),
            self.center_x + k * self.yaw.sin(),
        )
    }

    /// Validates anatomical plausibility.
    ///
    /// # Panics
    ///
    /// Panics if the pupil is not strictly inside the iris, extents are
    /// non-positive, or openness is out of `(0, 1]`.
    pub fn validate(&self) {
        assert!(
            self.pupil_radius > 0.0 && self.pupil_radius < self.iris_radius,
            "pupil radius {} must be positive and inside the iris {}",
            self.pupil_radius,
            self.iris_radius
        );
        assert!(self.eye_radius > 0.0, "eye radius must be positive");
        assert!(
            self.openness > 0.0 && self.openness <= 1.0,
            "openness must be in (0, 1]"
        );
    }
}

/// Renders an eye into a `size × size` grayscale image with per-pixel labels.
///
/// `noise_seed` controls only the additive sensor noise, so the same
/// parameters render the same geometry under different noise draws.
///
/// # Panics
///
/// Panics if `size == 0` or the parameters are anatomically invalid (see
/// [`EyeParams::validate`]).
pub fn render_eye(params: &EyeParams, size: usize, noise_seed: u64) -> Sample {
    assert!(size > 0, "image size must be non-zero");
    params.validate();
    let mut rng = StdRng::seed_from_u64(noise_seed);
    let (icy, icx) = params.iris_center();
    let rx = params.eye_radius;
    let ry = params.eye_radius * params.openness;
    // the glint sits between pupil centre and eye centre (specular highlight)
    let gy = icy * 0.7 + params.center_y * 0.3 - 0.35 * params.pupil_radius;
    let gx = icx * 0.7 + params.center_x * 0.3 + 0.35 * params.pupil_radius;
    let glint_r = 0.016f32;

    let mut labels = vec![0u8; size * size];
    let image = Tensor::from_fn(Shape::new(1, 1, size, size), |_, _, py, px| {
        let y = (py as f32 + 0.5) / size as f32;
        let x = (px as f32 + 0.5) / size as f32;
        let ey = (y - params.center_y) / ry;
        let ex = (x - params.center_x) / rx;
        let in_opening = ey * ey + ex * ex <= 1.0;
        let di = ((y - icy).powi(2) + (x - icx).powi(2)).sqrt();

        let (class, mut value) = if in_opening {
            if di <= params.pupil_radius {
                (
                    SegClass::Pupil,
                    0.06 + 0.02
                        * fractal_noise(x * size as f32, y * size as f32, 6.0, params.texture_seed),
                )
            } else if di <= params.iris_radius {
                // radial iris texture
                let ring = ((di / params.iris_radius) * 9.0).sin().abs();
                let tex = fractal_noise(
                    x * size as f32,
                    y * size as f32,
                    3.0,
                    params.texture_seed ^ 0xA5,
                );
                (SegClass::Iris, 0.26 + 0.08 * ring + 0.06 * tex)
            } else {
                // sclera with mild shading towards the eyelid boundary
                let rim = (ey * ey + ex * ex).sqrt();
                (SegClass::Sclera, 0.88 - 0.18 * rim * rim)
            }
        } else {
            // skin with procedural texture and a darker lash line near the opening
            let rim = (ey * ey + ex * ex).sqrt();
            let lash = if rim < 1.18 {
                0.12 * (1.18 - rim) / 0.18
            } else {
                0.0
            };
            let tex = fractal_noise(
                x * size as f32,
                y * size as f32,
                5.0,
                params.texture_seed ^ 0x5A,
            );
            (
                SegClass::Background,
                params.skin_brightness + 0.10 * tex - lash,
            )
        };
        labels[py * size + px] = class as u8;

        // specular glint overwrites intensity but not the label
        if params.glint && in_opening {
            let dg = ((y - gy).powi(2) + (x - gx).powi(2)).sqrt();
            if dg < glint_r {
                value = 0.98;
            }
        }
        let noise: f32 = {
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos() * 0.012
        };
        (value + noise).clamp(0.0, 1.0)
    });

    Sample {
        image,
        labels,
        gaze: params.gaze(),
        params: params.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labels::{class_centroid, class_histogram};

    #[test]
    fn renders_all_four_classes() {
        let s = render_eye(&EyeParams::centered(64), 64, 0);
        let hist = class_histogram(&s.labels);
        for (c, &count) in hist.iter().enumerate() {
            assert!(count > 0, "class {c} missing from rendered eye");
        }
        // skin should dominate (the paper's data-redundancy motivation)
        assert!(hist[0] > hist[1] + hist[2] + hist[3]);
    }

    #[test]
    fn pupil_is_darker_than_sclera() {
        let s = render_eye(&EyeParams::centered(64), 64, 0);
        let mut pupil_sum = 0.0;
        let mut pupil_n = 0;
        let mut sclera_sum = 0.0;
        let mut sclera_n = 0;
        for y in 0..64 {
            for x in 0..64 {
                let v = s.image.at(0, 0, y, x);
                match s.labels[y * 64 + x] {
                    3 => {
                        pupil_sum += v;
                        pupil_n += 1;
                    }
                    1 => {
                        sclera_sum += v;
                        sclera_n += 1;
                    }
                    _ => {}
                }
            }
        }
        assert!(pupil_sum / pupil_n as f32 + 0.3 < sclera_sum / sclera_n as f32);
    }

    #[test]
    fn gaze_shifts_the_pupil() {
        let mut right = EyeParams::centered(64);
        right.yaw = 20f32.to_radians();
        let mut left = EyeParams::centered(64);
        left.yaw = -20f32.to_radians();
        let sr = render_eye(&right, 64, 0);
        let sl = render_eye(&left, 64, 0);
        let cr = class_centroid(&sr.labels, 64, 64, SegClass::Pupil).unwrap();
        let cl = class_centroid(&sl.labels, 64, 64, SegClass::Pupil).unwrap();
        assert!(
            cr.1 > cl.1 + 4.0,
            "pupil x should follow yaw: {cr:?} vs {cl:?}"
        );
    }

    #[test]
    fn geometry_is_noise_invariant() {
        let p = EyeParams::centered(48);
        let a = render_eye(&p, 48, 1);
        let b = render_eye(&p, 48, 2);
        assert_eq!(a.labels, b.labels);
        assert!(a.image.sub(&b.image).max_abs() > 0.0);
    }

    #[test]
    fn random_params_are_valid_and_diverse() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = EyeParams::random(&mut rng);
        let b = EyeParams::random(&mut rng);
        a.validate();
        b.validate();
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "inside the iris")]
    fn rejects_pupil_larger_than_iris() {
        let mut p = EyeParams::centered(32);
        p.pupil_radius = p.iris_radius + 0.01;
        render_eye(&p, 32, 0);
    }
}
