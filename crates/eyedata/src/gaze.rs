//! 3-D gaze vectors.

use eyecod_tensor::{Shape, Tensor};

/// A unit 3-D gaze direction in the camera coordinate frame
/// (x right, y down, z into the scene — towards the camera looking at the
/// eye, `z > 0` means the eye looks at the camera).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GazeVector {
    /// Horizontal component.
    pub x: f32,
    /// Vertical component.
    pub y: f32,
    /// Depth component.
    pub z: f32,
}

impl GazeVector {
    /// Builds a gaze vector from yaw (horizontal, radians) and pitch
    /// (vertical, radians). Zero yaw/pitch looks straight at the camera.
    pub fn from_angles(yaw: f32, pitch: f32) -> Self {
        GazeVector {
            x: yaw.sin() * pitch.cos(),
            y: pitch.sin(),
            z: yaw.cos() * pitch.cos(),
        }
    }

    /// The yaw angle in radians.
    pub fn yaw(&self) -> f32 {
        self.x.atan2(self.z)
    }

    /// The pitch angle in radians.
    pub fn pitch(&self) -> f32 {
        self.y.asin()
    }

    /// Euclidean norm (1.0 for vectors built via [`GazeVector::from_angles`]).
    pub fn norm(&self) -> f32 {
        (self.x * self.x + self.y * self.y + self.z * self.z).sqrt()
    }

    /// Returns the normalised copy of this vector.
    ///
    /// # Panics
    ///
    /// Panics if the vector has (near-)zero norm.
    pub fn normalized(&self) -> Self {
        let n = self.norm();
        assert!(n > 1e-12, "cannot normalise a zero gaze vector");
        GazeVector {
            x: self.x / n,
            y: self.y / n,
            z: self.z / n,
        }
    }

    /// Like [`GazeVector::normalized`], but returns `None` instead of
    /// panicking when the vector is too short (or non-finite) to define a
    /// direction — the guard the tracker uses against degenerate model
    /// outputs.
    pub fn try_normalized(&self) -> Option<Self> {
        let n = self.norm();
        if !n.is_finite() || n <= 1e-6 {
            return None;
        }
        Some(GazeVector {
            x: self.x / n,
            y: self.y / n,
            z: self.z / n,
        })
    }

    /// Angular distance to another gaze vector, in degrees — the metric of
    /// the paper's gaze tables.
    pub fn angular_error_degrees(&self, other: &GazeVector) -> f32 {
        let a = self.normalized();
        let b = other.normalized();
        let cos = (a.x * b.x + a.y * b.y + a.z * b.z).clamp(-1.0, 1.0);
        cos.acos().to_degrees()
    }

    /// Packs a batch of gaze vectors into an `(N, 3, 1, 1)` tensor.
    pub fn batch_to_tensor(gazes: &[GazeVector]) -> Tensor {
        assert!(!gazes.is_empty(), "need at least one gaze vector");
        let mut t = Tensor::zeros(Shape::new(gazes.len(), 3, 1, 1));
        for (i, g) in gazes.iter().enumerate() {
            *t.at_mut(i, 0, 0, 0) = g.x;
            *t.at_mut(i, 1, 0, 0) = g.y;
            *t.at_mut(i, 2, 0, 0) = g.z;
        }
        t
    }

    /// Reads one gaze vector back out of an `(N, 3, 1, 1)` tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor does not have 3 channels or `n` is out of range.
    pub fn from_tensor(t: &Tensor, n: usize) -> Self {
        assert_eq!(t.shape().c, 3, "gaze tensor must have 3 channels");
        GazeVector {
            x: t.at(n, 0, 0, 0),
            y: t.at(n, 1, 0, 0),
            z: t.at(n, 2, 0, 0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_angles_is_unit() {
        for &(yaw, pitch) in &[(0.0f32, 0.0f32), (0.3, -0.2), (-0.5, 0.4)] {
            let g = GazeVector::from_angles(yaw, pitch);
            assert!((g.norm() - 1.0).abs() < 1e-6);
            assert!((g.yaw() - yaw).abs() < 1e-5);
            assert!((g.pitch() - pitch).abs() < 1e-5);
        }
    }

    #[test]
    fn straight_ahead_is_z() {
        let g = GazeVector::from_angles(0.0, 0.0);
        assert!((g.z - 1.0).abs() < 1e-6 && g.x.abs() < 1e-6 && g.y.abs() < 1e-6);
    }

    #[test]
    fn angular_error_between_known_angles() {
        let a = GazeVector::from_angles(0.0, 0.0);
        let b = GazeVector::from_angles(10f32.to_radians(), 0.0);
        assert!((a.angular_error_degrees(&b) - 10.0).abs() < 1e-3);
        assert!(a.angular_error_degrees(&a) < 1e-3);
    }

    #[test]
    fn tensor_round_trip() {
        let gazes = vec![
            GazeVector::from_angles(0.1, 0.2),
            GazeVector::from_angles(-0.3, 0.05),
        ];
        let t = GazeVector::batch_to_tensor(&gazes);
        assert_eq!(t.shape().dims(), (2, 3, 1, 1));
        for (i, g) in gazes.iter().enumerate() {
            let back = GazeVector::from_tensor(&t, i);
            assert!(g.angular_error_degrees(&back) < 1e-4);
        }
    }

    #[test]
    #[should_panic(expected = "zero gaze")]
    fn normalize_rejects_zero() {
        GazeVector {
            x: 0.0,
            y: 0.0,
            z: 0.0,
        }
        .normalized();
    }

    #[test]
    fn try_normalized_flags_degenerate_vectors() {
        let zero = GazeVector {
            x: 0.0,
            y: 0.0,
            z: 0.0,
        };
        assert_eq!(zero.try_normalized(), None);
        let tiny = GazeVector {
            x: 1e-9,
            y: 0.0,
            z: 0.0,
        };
        assert_eq!(tiny.try_normalized(), None);
        let nan = GazeVector {
            x: f32::NAN,
            y: 0.0,
            z: 0.0,
        };
        assert_eq!(nan.try_normalized(), None);
        let g = GazeVector {
            x: 0.0,
            y: 0.0,
            z: 2.0,
        }
        .try_normalized()
        .expect("finite vector normalises");
        assert!((g.norm() - 1.0).abs() < 1e-6 && g.z == 1.0);
    }
}
