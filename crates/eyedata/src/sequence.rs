//! Temporal eye-motion sequences: slow positional drift, fast gaze saccades.
//!
//! The predict-then-focus design rests on a timescale separation (paper
//! §4.3): the eye's *position in the frame* moves slowly (head-mount
//! slippage), while the *gaze direction* changes quickly (saccades). The
//! generator reproduces both statistics so the ROI-refresh-frequency
//! ablation (Table 5) can be run faithfully.

use crate::render::EyeParams;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the motion statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct MotionConfig {
    /// Per-frame standard deviation of the eye-centre random walk
    /// (normalised units). Default 4e-4 ≈ slow slippage.
    pub drift_std: f32,
    /// Probability per frame of starting a saccade.
    pub saccade_prob: f32,
    /// Saccade amplitude range in radians.
    pub saccade_amplitude: (f32, f32),
    /// Duration of a saccade in frames.
    pub saccade_frames: usize,
    /// Per-frame fixation jitter of the gaze angles (radians).
    pub fixation_jitter: f32,
    /// Maximum gaze angle magnitude (radians).
    pub max_angle: f32,
    /// Probability per frame of starting a blink.
    pub blink_prob: f32,
    /// Blink duration in frames (close + reopen).
    pub blink_frames: usize,
}

impl Default for MotionConfig {
    fn default() -> Self {
        MotionConfig {
            drift_std: 4e-4,
            saccade_prob: 0.04,
            saccade_amplitude: (0.05, 0.35),
            saccade_frames: 4,
            fixation_jitter: 2e-3,
            max_angle: 25.0f32.to_radians(),
            blink_prob: 0.005,
            blink_frames: 6,
        }
    }
}

/// Generates an endless stream of [`EyeParams`] frames.
#[derive(Debug)]
pub struct EyeMotionGenerator {
    rng: StdRng,
    config: MotionConfig,
    current: EyeParams,
    saccade_target: Option<(f32, f32)>,
    saccade_remaining: usize,
    blink_remaining: usize,
    base_openness: f32,
    frame: u64,
}

impl EyeMotionGenerator {
    /// Creates a generator from an initial eye and a seed.
    pub fn new(initial: EyeParams, config: MotionConfig, seed: u64) -> Self {
        initial.validate();
        let base_openness = initial.openness;
        EyeMotionGenerator {
            rng: StdRng::seed_from_u64(seed),
            config,
            current: initial,
            saccade_target: None,
            saccade_remaining: 0,
            blink_remaining: 0,
            base_openness,
            frame: 0,
        }
    }

    /// A generator with default motion statistics starting from a random
    /// plausible eye.
    pub fn with_seed(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x00EE_C0D0);
        Self::new(EyeParams::random(&mut rng), MotionConfig::default(), seed)
    }

    /// The frame counter (number of frames produced so far).
    pub fn frame(&self) -> u64 {
        self.frame
    }

    /// Advances one frame and returns its parameters.
    pub fn next_frame(&mut self) -> EyeParams {
        let c = self.config.clone();
        fn gauss(rng: &mut StdRng, std: f32) -> f32 {
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos() * std
        }
        // slow positional drift, reflected at plausible bounds
        self.current.center_y =
            (self.current.center_y + gauss(&mut self.rng, c.drift_std)).clamp(0.35, 0.65);
        self.current.center_x =
            (self.current.center_x + gauss(&mut self.rng, c.drift_std)).clamp(0.35, 0.65);

        // fast gaze dynamics: saccades towards random targets, else fixation jitter
        if self.saccade_remaining > 0 {
            if let Some((ty, tx)) = self.saccade_target {
                let step = 1.0 / self.saccade_remaining as f32;
                self.current.pitch += (ty - self.current.pitch) * step;
                self.current.yaw += (tx - self.current.yaw) * step;
            }
            self.saccade_remaining -= 1;
            if self.saccade_remaining == 0 {
                self.saccade_target = None;
            }
        } else if self.rng.gen::<f32>() < c.saccade_prob {
            let amp = self
                .rng
                .gen_range(c.saccade_amplitude.0..c.saccade_amplitude.1);
            let dir = self.rng.gen_range(0.0..std::f32::consts::TAU);
            let ty = (self.current.pitch + amp * dir.sin()).clamp(-c.max_angle, c.max_angle);
            let tx = (self.current.yaw + amp * dir.cos()).clamp(-c.max_angle, c.max_angle);
            self.saccade_target = Some((ty, tx));
            self.saccade_remaining = c.saccade_frames.max(1);
        } else {
            self.current.pitch = (self.current.pitch + gauss(&mut self.rng, c.fixation_jitter))
                .clamp(-c.max_angle, c.max_angle);
            self.current.yaw = (self.current.yaw + gauss(&mut self.rng, c.fixation_jitter))
                .clamp(-c.max_angle, c.max_angle);
        }

        // blinks: the lid closes and reopens over blink_frames; gaze keeps
        // moving underneath (as in real saccadic blinks)
        if self.blink_remaining > 0 {
            self.blink_remaining -= 1;
            let t = self.blink_remaining as f32 / c.blink_frames.max(1) as f32;
            // triangular profile: fully closed at the midpoint
            let closure = 1.0 - (2.0 * t - 1.0).abs();
            self.current.openness = (self.base_openness * (1.0 - 0.9 * closure)).max(0.05);
        } else if self.rng.gen::<f32>() < c.blink_prob {
            self.blink_remaining = c.blink_frames.max(1);
        } else {
            self.current.openness = self.base_openness;
        }

        self.frame += 1;
        self.current.clone()
    }

    /// Whether the eye is currently mid-blink.
    pub fn in_blink(&self) -> bool {
        self.blink_remaining > 0
    }

    /// Produces the next `n` frames as a vector.
    pub fn take_frames(&mut self, n: usize) -> Vec<EyeParams> {
        (0..n).map(|_| self.next_frame()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn displacement_stats(frames: &[EyeParams]) -> (f32, f32) {
        // (total eye-centre displacement, total gaze angular displacement)
        let mut center = 0.0f32;
        let mut gaze = 0.0f32;
        for w in frames.windows(2) {
            center += ((w[1].center_y - w[0].center_y).powi(2)
                + (w[1].center_x - w[0].center_x).powi(2))
            .sqrt();
            gaze += ((w[1].pitch - w[0].pitch).powi(2) + (w[1].yaw - w[0].yaw).powi(2)).sqrt();
        }
        (center, gaze)
    }

    #[test]
    fn gaze_moves_much_faster_than_eye_position() {
        let mut gen = EyeMotionGenerator::with_seed(7);
        let frames = gen.take_frames(500);
        let (center, gaze) = displacement_stats(&frames);
        // the paper's core timescale assumption: gaze >> position movement
        assert!(
            gaze > center * 10.0,
            "gaze displacement {gaze} should dwarf centre drift {center}"
        );
    }

    #[test]
    fn frames_stay_anatomically_valid() {
        let mut gen = EyeMotionGenerator::with_seed(3);
        for p in gen.take_frames(300) {
            p.validate();
            assert!(p.yaw.abs() <= 26f32.to_radians());
            assert!(p.pitch.abs() <= 26f32.to_radians());
        }
    }

    #[test]
    fn sequences_are_seed_reproducible() {
        let a = EyeMotionGenerator::with_seed(11).take_frames(50);
        let b = EyeMotionGenerator::with_seed(11).take_frames(50);
        assert_eq!(a, b);
        let c = EyeMotionGenerator::with_seed(12).take_frames(50);
        assert_ne!(a, c);
    }

    #[test]
    fn saccades_actually_occur() {
        let mut gen = EyeMotionGenerator::with_seed(5);
        let frames = gen.take_frames(400);
        let mut big_jumps = 0;
        for w in frames.windows(2) {
            let d = ((w[1].pitch - w[0].pitch).powi(2) + (w[1].yaw - w[0].yaw).powi(2)).sqrt();
            if d > 0.01 {
                big_jumps += 1;
            }
        }
        assert!(big_jumps > 10, "expected saccadic jumps, saw {big_jumps}");
    }

    #[test]
    fn blinks_close_and_reopen_the_eye() {
        let mut config = MotionConfig {
            blink_prob: 0.2,
            ..MotionConfig::default()
        };
        config.saccade_prob = 0.0;
        let initial = crate::render::EyeParams::centered(48);
        let base = initial.openness;
        let mut gen = EyeMotionGenerator::new(initial, config, 9);
        let frames = gen.take_frames(200);
        let min_open = frames.iter().map(|p| p.openness).fold(f32::MAX, f32::min);
        assert!(
            min_open < base * 0.5,
            "no blink closed the eye: min {min_open}"
        );
        // the eye reopens after every blink
        assert!(frames.last().unwrap().openness > 0.0);
        assert!(
            frames
                .iter()
                .filter(|p| (p.openness - base).abs() < 1e-6)
                .count()
                > 50,
            "the eye should be open most of the time"
        );
        // every frame stays renderable
        for p in &frames {
            p.validate();
        }
    }

    #[test]
    fn frame_counter_advances() {
        let mut gen = EyeMotionGenerator::with_seed(1);
        assert_eq!(gen.frame(), 0);
        gen.take_frames(17);
        assert_eq!(gen.frame(), 17);
    }
}
