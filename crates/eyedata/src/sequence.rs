//! Temporal eye-motion sequences: slow positional drift, fast gaze saccades.
//!
//! The predict-then-focus design rests on a timescale separation (paper
//! §4.3): the eye's *position in the frame* moves slowly (head-mount
//! slippage), while the *gaze direction* changes quickly (saccades). The
//! generator reproduces both statistics so the ROI-refresh-frequency
//! ablation (Table 5) can be run faithfully.

use crate::render::EyeParams;
use eyecod_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the motion statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct MotionConfig {
    /// Per-frame standard deviation of the eye-centre random walk
    /// (normalised units). Default 4e-4 ≈ slow slippage.
    pub drift_std: f32,
    /// Probability per frame of starting a saccade.
    pub saccade_prob: f32,
    /// Saccade amplitude range in radians.
    pub saccade_amplitude: (f32, f32),
    /// Duration of a saccade in frames.
    pub saccade_frames: usize,
    /// Per-frame fixation jitter of the gaze angles (radians).
    pub fixation_jitter: f32,
    /// Maximum gaze angle magnitude (radians).
    pub max_angle: f32,
    /// Probability per frame of starting a blink.
    pub blink_prob: f32,
    /// Blink duration in frames (close + reopen).
    pub blink_frames: usize,
}

impl Default for MotionConfig {
    fn default() -> Self {
        MotionConfig {
            drift_std: 4e-4,
            saccade_prob: 0.04,
            saccade_amplitude: (0.05, 0.35),
            saccade_frames: 4,
            fixation_jitter: 2e-3,
            max_angle: 25.0f32.to_radians(),
            blink_prob: 0.005,
            blink_frames: 6,
        }
    }
}

impl MotionConfig {
    /// A fixation-heavy traffic mix: no saccades, no blinks, only drift
    /// and sub-pixel fixation jitter — the regime where an event-driven
    /// frontend pays off most (almost every frame is a near-duplicate).
    pub fn fixation() -> Self {
        MotionConfig {
            saccade_prob: 0.0,
            blink_prob: 0.0,
            fixation_jitter: 5e-4,
            ..MotionConfig::default()
        }
    }

    /// A smooth-pursuit mix: frequent low-amplitude, long-duration gaze
    /// movements (tracking a slowly moving target) with rare blinks — a
    /// moderate per-frame pixel-change rate.
    pub fn smooth_pursuit() -> Self {
        MotionConfig {
            saccade_prob: 0.25,
            saccade_amplitude: (0.01, 0.06),
            saccade_frames: 8,
            blink_prob: 0.002,
            ..MotionConfig::default()
        }
    }

    /// A saccade-heavy mix: frequent large ballistic jumps plus blinks —
    /// the worst case for a delta frontend, where most frames move many
    /// pixels and the dense path must run anyway.
    pub fn saccadic() -> Self {
        MotionConfig {
            saccade_prob: 0.25,
            saccade_amplitude: (0.10, 0.35),
            saccade_frames: 3,
            blink_prob: 0.02,
            ..MotionConfig::default()
        }
    }
}

/// The motion phase a generator frame was produced in. Blink dominates
/// (the lid sweep moves the most pixels), then saccade, then fixation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MotionPhase {
    /// Fixation/drift: sub-pixel jitter only.
    Fixation,
    /// Mid-saccade: the gaze is stepping towards a target.
    Saccade,
    /// Mid-blink: the lid is closing or reopening.
    Blink,
}

/// A per-frame change map: which scene pixels (and which scene columns)
/// moved beyond a magnitude threshold between two rendered frames. This is
/// the software form of an event-sensor readout — the dense frame carries
/// the full scene, the change map carries *where it actually changed* — and
/// what the delta acquisition path consumes instead of re-sensing
/// everything.
///
/// Buffers are reused across [`ChangeMap::compute_into`] calls, so a warm
/// change map re-diffs with zero heap allocation.
#[derive(Debug, Clone, Default)]
pub struct ChangeMap {
    rows: usize,
    cols: usize,
    /// Row-major per-pixel changed mask.
    mask: Vec<bool>,
    /// Ascending indices of columns with at least one changed pixel.
    changed_cols: Vec<usize>,
    /// Total count of super-threshold pixels.
    changed_px: usize,
}

impl ChangeMap {
    /// An empty change map (buffers grow on first use).
    pub fn new() -> Self {
        ChangeMap::default()
    }

    /// Diffs `next` against `prev` with magnitude threshold `threshold`,
    /// allocating the map. Both tensors must be single-item single-channel
    /// images of identical shape.
    pub fn compute(prev: &Tensor, next: &Tensor, threshold: f32) -> Self {
        let mut m = ChangeMap::new();
        m.compute_into(prev, next, threshold);
        m
    }

    /// [`ChangeMap::compute`] into this map's reused buffers.
    ///
    /// # Panics
    ///
    /// Panics if the two images differ in shape or are not `1×1×h×w`.
    pub fn compute_into(&mut self, prev: &Tensor, next: &Tensor, threshold: f32) {
        let shape = prev.shape();
        assert_eq!(shape, next.shape(), "change map needs matching shapes");
        assert_eq!(
            (shape.n, shape.c),
            (1, 1),
            "change map expects a 1x1xHxW image"
        );
        let (h, w) = (shape.h, shape.w);
        self.rows = h;
        self.cols = w;
        self.mask.clear();
        self.mask.resize(h * w, false);
        self.changed_cols.clear();
        self.changed_px = 0;
        let (p, n) = (prev.as_slice(), next.as_slice());
        for c in 0..w {
            let mut col_changed = false;
            for r in 0..h {
                let i = r * w + c;
                if (n[i] - p[i]).abs() > threshold {
                    self.mask[i] = true;
                    self.changed_px += 1;
                    col_changed = true;
                }
            }
            if col_changed {
                self.changed_cols.push(c);
            }
        }
    }

    /// Image height the map was computed over.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Image width the map was computed over.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Ascending indices of columns containing at least one changed pixel.
    pub fn changed_cols(&self) -> &[usize] {
        &self.changed_cols
    }

    /// Count of super-threshold pixels.
    pub fn changed_px(&self) -> usize {
        self.changed_px
    }

    /// Whether pixel `(r, c)` changed.
    pub fn is_changed(&self, r: usize, c: usize) -> bool {
        self.mask[r * self.cols + c]
    }

    /// Fraction of pixels that changed, in `[0, 1]`.
    pub fn density(&self) -> f64 {
        if self.mask.is_empty() {
            0.0
        } else {
            self.changed_px as f64 / self.mask.len() as f64
        }
    }
}

/// Generates an endless stream of [`EyeParams`] frames.
#[derive(Debug)]
pub struct EyeMotionGenerator {
    rng: StdRng,
    config: MotionConfig,
    current: EyeParams,
    saccade_target: Option<(f32, f32)>,
    saccade_remaining: usize,
    blink_remaining: usize,
    base_openness: f32,
    frame: u64,
    phase: MotionPhase,
}

impl EyeMotionGenerator {
    /// Creates a generator from an initial eye and a seed.
    pub fn new(initial: EyeParams, config: MotionConfig, seed: u64) -> Self {
        initial.validate();
        let base_openness = initial.openness;
        EyeMotionGenerator {
            rng: StdRng::seed_from_u64(seed),
            config,
            current: initial,
            saccade_target: None,
            saccade_remaining: 0,
            blink_remaining: 0,
            base_openness,
            frame: 0,
            phase: MotionPhase::Fixation,
        }
    }

    /// A generator with default motion statistics starting from a random
    /// plausible eye.
    pub fn with_seed(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x00EE_C0D0);
        Self::new(EyeParams::random(&mut rng), MotionConfig::default(), seed)
    }

    /// The frame counter (number of frames produced so far).
    pub fn frame(&self) -> u64 {
        self.frame
    }

    /// Advances one frame and returns its parameters.
    pub fn next_frame(&mut self) -> EyeParams {
        let c = self.config.clone();
        fn gauss(rng: &mut StdRng, std: f32) -> f32 {
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos() * std
        }
        // slow positional drift, reflected at plausible bounds
        self.current.center_y =
            (self.current.center_y + gauss(&mut self.rng, c.drift_std)).clamp(0.35, 0.65);
        self.current.center_x =
            (self.current.center_x + gauss(&mut self.rng, c.drift_std)).clamp(0.35, 0.65);

        // fast gaze dynamics: saccades towards random targets, else fixation jitter
        let mut phase = MotionPhase::Fixation;
        if self.saccade_remaining > 0 {
            phase = MotionPhase::Saccade;
            if let Some((ty, tx)) = self.saccade_target {
                let step = 1.0 / self.saccade_remaining as f32;
                self.current.pitch += (ty - self.current.pitch) * step;
                self.current.yaw += (tx - self.current.yaw) * step;
            }
            self.saccade_remaining -= 1;
            if self.saccade_remaining == 0 {
                self.saccade_target = None;
            }
        } else if self.rng.gen::<f32>() < c.saccade_prob {
            let amp = self
                .rng
                .gen_range(c.saccade_amplitude.0..c.saccade_amplitude.1);
            let dir = self.rng.gen_range(0.0..std::f32::consts::TAU);
            let ty = (self.current.pitch + amp * dir.sin()).clamp(-c.max_angle, c.max_angle);
            let tx = (self.current.yaw + amp * dir.cos()).clamp(-c.max_angle, c.max_angle);
            self.saccade_target = Some((ty, tx));
            self.saccade_remaining = c.saccade_frames.max(1);
        } else {
            self.current.pitch = (self.current.pitch + gauss(&mut self.rng, c.fixation_jitter))
                .clamp(-c.max_angle, c.max_angle);
            self.current.yaw = (self.current.yaw + gauss(&mut self.rng, c.fixation_jitter))
                .clamp(-c.max_angle, c.max_angle);
        }

        // blinks: the lid closes and reopens over blink_frames; gaze keeps
        // moving underneath (as in real saccadic blinks)
        if self.blink_remaining > 0 {
            // blink dominates the phase label: the lid sweep moves far more
            // pixels than any gaze step underneath it
            phase = MotionPhase::Blink;
            self.blink_remaining -= 1;
            let t = self.blink_remaining as f32 / c.blink_frames.max(1) as f32;
            // triangular profile: fully closed at the midpoint
            let closure = 1.0 - (2.0 * t - 1.0).abs();
            self.current.openness = (self.base_openness * (1.0 - 0.9 * closure)).max(0.05);
        } else if self.rng.gen::<f32>() < c.blink_prob {
            self.blink_remaining = c.blink_frames.max(1);
        } else {
            self.current.openness = self.base_openness;
        }

        self.phase = phase;
        self.frame += 1;
        self.current.clone()
    }

    /// The motion phase of the most recently produced frame.
    pub fn phase(&self) -> MotionPhase {
        self.phase
    }

    /// Whether the eye is currently mid-blink.
    pub fn in_blink(&self) -> bool {
        self.blink_remaining > 0
    }

    /// Produces the next `n` frames as a vector.
    pub fn take_frames(&mut self, n: usize) -> Vec<EyeParams> {
        (0..n).map(|_| self.next_frame()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn displacement_stats(frames: &[EyeParams]) -> (f32, f32) {
        // (total eye-centre displacement, total gaze angular displacement)
        let mut center = 0.0f32;
        let mut gaze = 0.0f32;
        for w in frames.windows(2) {
            center += ((w[1].center_y - w[0].center_y).powi(2)
                + (w[1].center_x - w[0].center_x).powi(2))
            .sqrt();
            gaze += ((w[1].pitch - w[0].pitch).powi(2) + (w[1].yaw - w[0].yaw).powi(2)).sqrt();
        }
        (center, gaze)
    }

    #[test]
    fn gaze_moves_much_faster_than_eye_position() {
        let mut gen = EyeMotionGenerator::with_seed(7);
        let frames = gen.take_frames(500);
        let (center, gaze) = displacement_stats(&frames);
        // the paper's core timescale assumption: gaze >> position movement
        assert!(
            gaze > center * 10.0,
            "gaze displacement {gaze} should dwarf centre drift {center}"
        );
    }

    #[test]
    fn frames_stay_anatomically_valid() {
        let mut gen = EyeMotionGenerator::with_seed(3);
        for p in gen.take_frames(300) {
            p.validate();
            assert!(p.yaw.abs() <= 26f32.to_radians());
            assert!(p.pitch.abs() <= 26f32.to_radians());
        }
    }

    #[test]
    fn sequences_are_seed_reproducible() {
        let a = EyeMotionGenerator::with_seed(11).take_frames(50);
        let b = EyeMotionGenerator::with_seed(11).take_frames(50);
        assert_eq!(a, b);
        let c = EyeMotionGenerator::with_seed(12).take_frames(50);
        assert_ne!(a, c);
    }

    #[test]
    fn saccades_actually_occur() {
        let mut gen = EyeMotionGenerator::with_seed(5);
        let frames = gen.take_frames(400);
        let mut big_jumps = 0;
        for w in frames.windows(2) {
            let d = ((w[1].pitch - w[0].pitch).powi(2) + (w[1].yaw - w[0].yaw).powi(2)).sqrt();
            if d > 0.01 {
                big_jumps += 1;
            }
        }
        assert!(big_jumps > 10, "expected saccadic jumps, saw {big_jumps}");
    }

    #[test]
    fn blinks_close_and_reopen_the_eye() {
        let mut config = MotionConfig {
            blink_prob: 0.2,
            ..MotionConfig::default()
        };
        config.saccade_prob = 0.0;
        let initial = crate::render::EyeParams::centered(48);
        let base = initial.openness;
        let mut gen = EyeMotionGenerator::new(initial, config, 9);
        let frames = gen.take_frames(200);
        let min_open = frames.iter().map(|p| p.openness).fold(f32::MAX, f32::min);
        assert!(
            min_open < base * 0.5,
            "no blink closed the eye: min {min_open}"
        );
        // the eye reopens after every blink
        assert!(frames.last().unwrap().openness > 0.0);
        assert!(
            frames
                .iter()
                .filter(|p| (p.openness - base).abs() < 1e-6)
                .count()
                > 50,
            "the eye should be open most of the time"
        );
        // every frame stays renderable
        for p in &frames {
            p.validate();
        }
    }

    #[test]
    fn frame_counter_advances() {
        let mut gen = EyeMotionGenerator::with_seed(1);
        assert_eq!(gen.frame(), 0);
        gen.take_frames(17);
        assert_eq!(gen.frame(), 17);
    }

    #[test]
    fn change_map_reports_exact_pixels_and_columns() {
        use eyecod_tensor::{Shape, Tensor};
        let prev = Tensor::zeros(Shape::new(1, 1, 4, 5));
        let mut next = Tensor::zeros(Shape::new(1, 1, 4, 5));
        // (1,2) and (3,2) change in column 2; (0,4) changes in column 4;
        // (2,0) moves below threshold and must not register
        next.as_mut_slice()[7] = 0.5; // (1,2)
        next.as_mut_slice()[17] = -0.5; // (3,2)
        next.as_mut_slice()[4] = 0.2; // (0,4)
        next.as_mut_slice()[10] = 0.04; // (2,0), sub-threshold
        let map = ChangeMap::compute(&prev, &next, 0.05);
        assert_eq!(map.changed_px(), 3);
        assert_eq!(map.changed_cols(), &[2, 4]);
        assert!(map.is_changed(1, 2) && map.is_changed(3, 2) && map.is_changed(0, 4));
        assert!(!map.is_changed(2, 0));
        assert!((map.density() - 3.0 / 20.0).abs() < 1e-12);
        // compute_into through warm buffers matches the allocating form
        let mut reused = ChangeMap::new();
        reused.compute_into(&prev, &next, 0.05);
        reused.compute_into(&prev, &next, 0.05);
        assert_eq!(reused.changed_px(), map.changed_px());
        assert_eq!(reused.changed_cols(), map.changed_cols());
    }

    #[test]
    fn fixation_change_maps_are_sparse_and_saccadic_ones_dense() {
        use crate::render::render_eye;
        // threshold well above the renderer's per-pixel noise (std 0.012)
        const THRESHOLD: f32 = 0.05;
        let density = |config: MotionConfig, seed: u64| -> f64 {
            let mut gen = EyeMotionGenerator::new(EyeParams::centered(48), config, seed);
            let mut prev = render_eye(&gen.next_frame(), 48, 1000).image;
            let mut map = ChangeMap::new();
            let mut total = 0.0;
            for i in 1..40u64 {
                let next = render_eye(&gen.next_frame(), 48, 1000 + i).image;
                map.compute_into(&prev, &next, THRESHOLD);
                total += map.density();
                prev = next;
            }
            total / 39.0
        };
        let fix = density(MotionConfig::fixation(), 21);
        let sac = density(MotionConfig::saccadic(), 21);
        assert!(
            fix < 0.10,
            "fixation traffic should barely move pixels: density {fix:.3}"
        );
        assert!(
            sac > 2.0 * fix,
            "saccadic traffic should move far more pixels: {sac:.3} vs {fix:.3}"
        );
    }

    #[test]
    fn phases_track_the_generator_state() {
        // fixation preset: never anything but Fixation
        let mut gen = EyeMotionGenerator::new(EyeParams::centered(48), MotionConfig::fixation(), 3);
        for _ in 0..100 {
            gen.next_frame();
            assert_eq!(gen.phase(), MotionPhase::Fixation);
        }
        // saccadic preset: all three phases appear over a long run
        let mut gen = EyeMotionGenerator::new(EyeParams::centered(48), MotionConfig::saccadic(), 3);
        let mut seen = [false; 3];
        for _ in 0..400 {
            gen.next_frame();
            seen[match gen.phase() {
                MotionPhase::Fixation => 0,
                MotionPhase::Saccade => 1,
                MotionPhase::Blink => 2,
            }] = true;
        }
        assert_eq!(seen, [true; 3], "expected all phases in saccadic traffic");
    }
}
