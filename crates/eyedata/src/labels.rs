//! Segmentation label taxonomy and mask statistics.

/// The OpenEDS 4-class eye segmentation taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum SegClass {
    /// Background and skin (everything that is not the open eye).
    Background = 0,
    /// The white of the eye.
    Sclera = 1,
    /// The iris annulus.
    Iris = 2,
    /// The pupil disc.
    Pupil = 3,
}

impl SegClass {
    /// Number of classes.
    pub const COUNT: usize = 4;

    /// All classes in index order.
    pub const ALL: [SegClass; 4] = [
        SegClass::Background,
        SegClass::Sclera,
        SegClass::Iris,
        SegClass::Pupil,
    ];

    /// Converts a class index to a class.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= 4`.
    pub fn from_index(idx: usize) -> SegClass {
        Self::ALL[idx]
    }

    /// The class index.
    pub fn index(self) -> usize {
        self as usize
    }
}

/// Centroid `(y, x)` of all pixels of `class` in a dense label map, or
/// `None` if the class is absent.
///
/// # Panics
///
/// Panics if `labels.len() != h * w`.
pub fn class_centroid(labels: &[u8], h: usize, w: usize, class: SegClass) -> Option<(f32, f32)> {
    assert_eq!(labels.len(), h * w, "label map size mismatch");
    let mut sy = 0.0f64;
    let mut sx = 0.0f64;
    let mut count = 0usize;
    for y in 0..h {
        for x in 0..w {
            if labels[y * w + x] == class as u8 {
                sy += y as f64;
                sx += x as f64;
                count += 1;
            }
        }
    }
    (count > 0).then(|| ((sy / count as f64) as f32, (sx / count as f64) as f32))
}

/// Axis-aligned bounding box `(y0, x0, y1, x1)` (inclusive) of `class`, or
/// `None` if absent.
///
/// # Panics
///
/// Panics if `labels.len() != h * w`.
pub fn class_bbox(
    labels: &[u8],
    h: usize,
    w: usize,
    class: SegClass,
) -> Option<(usize, usize, usize, usize)> {
    assert_eq!(labels.len(), h * w, "label map size mismatch");
    let mut bbox: Option<(usize, usize, usize, usize)> = None;
    for y in 0..h {
        for x in 0..w {
            if labels[y * w + x] == class as u8 {
                bbox = Some(match bbox {
                    None => (y, x, y, x),
                    Some((y0, x0, y1, x1)) => (y0.min(y), x0.min(x), y1.max(y), x1.max(x)),
                });
            }
        }
    }
    bbox
}

/// Pixel count of each class in a label map.
pub fn class_histogram(labels: &[u8]) -> [usize; SegClass::COUNT] {
    let mut hist = [0usize; SegClass::COUNT];
    for &l in labels {
        assert!((l as usize) < SegClass::COUNT, "label {l} out of range");
        hist[l as usize] += 1;
    }
    hist
}

/// Mean intersection-over-union between a predicted and ground-truth label
/// map — the segmentation metric of the paper's Table 3. Classes absent from
/// both maps are skipped (standard convention).
///
/// # Panics
///
/// Panics if lengths differ or labels are out of range.
pub fn mean_iou(pred: &[u8], truth: &[u8]) -> f32 {
    assert_eq!(pred.len(), truth.len(), "label map length mismatch");
    let mut inter = [0usize; SegClass::COUNT];
    let mut union = [0usize; SegClass::COUNT];
    for (&p, &t) in pred.iter().zip(truth) {
        assert!((p as usize) < SegClass::COUNT && (t as usize) < SegClass::COUNT);
        if p == t {
            inter[p as usize] += 1;
            union[p as usize] += 1;
        } else {
            union[p as usize] += 1;
            union[t as usize] += 1;
        }
    }
    let mut sum = 0.0f32;
    let mut present = 0usize;
    for c in 0..SegClass::COUNT {
        if union[c] > 0 {
            sum += inter[c] as f32 / union[c] as f32;
            present += 1;
        }
    }
    if present == 0 {
        1.0
    } else {
        sum / present as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_round_trip() {
        for c in SegClass::ALL {
            assert_eq!(SegClass::from_index(c.index()), c);
        }
    }

    #[test]
    fn centroid_of_single_pixel() {
        let mut labels = vec![0u8; 16];
        labels[2 * 4 + 3] = SegClass::Pupil as u8;
        let c = class_centroid(&labels, 4, 4, SegClass::Pupil).unwrap();
        assert_eq!(c, (2.0, 3.0));
        assert!(class_centroid(&labels, 4, 4, SegClass::Iris).is_none());
    }

    #[test]
    fn bbox_covers_extremes() {
        let mut labels = vec![0u8; 25];
        labels[5 + 1] = 1; // row 1, col 1
        labels[3 * 5 + 4] = 1;
        assert_eq!(
            class_bbox(&labels, 5, 5, SegClass::Sclera),
            Some((1, 1, 3, 4))
        );
    }

    #[test]
    fn histogram_counts() {
        let labels = vec![0u8, 1, 1, 2, 3, 3, 3, 0];
        assert_eq!(class_histogram(&labels), [2, 2, 1, 3]);
    }

    #[test]
    fn miou_perfect_is_one() {
        let labels = vec![0u8, 1, 2, 3, 1, 0];
        assert_eq!(mean_iou(&labels, &labels), 1.0);
    }

    #[test]
    fn miou_half_overlap() {
        // one class, half the pixels wrong against an all-zero truth
        let pred = vec![0u8, 0, 1, 1];
        let truth = vec![0u8, 0, 0, 0];
        // class0: inter 2, union 4 -> 0.5 ; class1: inter 0, union 2 -> 0
        assert!((mean_iou(&pred, &truth) - 0.25).abs() < 1e-6);
    }

    #[test]
    fn miou_is_symmetric() {
        let a = vec![0u8, 1, 2, 3, 2, 1, 0, 0];
        let b = vec![0u8, 1, 1, 3, 2, 2, 0, 1];
        assert!((mean_iou(&a, &b) - mean_iou(&b, &a)).abs() < 1e-6);
    }
}
