//! # EyeCoD
//!
//! A comprehensive Rust reproduction of **"EyeCoD: Eye Tracking System
//! Acceleration via FlatCam-based Algorithm & Accelerator Co-Design"**
//! (You et al., ISCA 2022): a lensless-camera eye-tracking system with a
//! predict-then-focus algorithm pipeline and a dedicated DNN accelerator,
//! co-designed for >240 FPS real-time gaze estimation on VR/AR headsets.
//!
//! This facade crate re-exports the workspace's crates:
//!
//! | Crate | What it provides |
//! |---|---|
//! | [`tensor`] | NCHW tensors, NN operators with backward passes, optimisers, int8 quantisation |
//! | [`optics`] | FlatCam masks, sensor models, Tikhonov reconstruction, first-layer-in-mask interface |
//! | [`eyedata`] | Synthetic eye dataset: renderer, labels, gaze vectors, motion sequences |
//! | [`models`] | Full-size specs of RITNet / FBNet-C100 / ResNet18 / MobileNetV2 / U-Net + trainable proxies |
//! | [`accel`] | Cycle-level accelerator simulator (MAC lanes, SWPR buffer, orchestration, energy) |
//! | [`platforms`] | Baseline platform and communication models (EdgeCPU/CPU/EdgeGPU/GPU/CIS-GEP) |
//! | [`core`] | The predict-then-focus tracker tying acquisition, segmentation, ROI and gaze together |
//! | [`serve`] | Multi-session serving: session registry, cross-session gaze micro-batching, load-shedding |
//! | [`telemetry`] | Lock-light counters and stage-latency histograms with JSON snapshot export |
//! | [`faults`] | Deterministic fault-injection plans and the recovery/degradation vocabulary |
//!
//! # Quickstart
//!
//! ```no_run
//! use eyecod::core::tracker::{EyeTracker, TrackerConfig};
//! use eyecod::core::training::{train_tracker_models, TrainingSetup};
//! use eyecod::eyedata::EyeMotionGenerator;
//!
//! // Train small proxy models on synthetic eyes (seconds).
//! let config = TrackerConfig::small();
//! let models = train_tracker_models(&TrainingSetup::quick(), &config);
//!
//! // Track a synthetic eye-motion sequence through the FlatCam pipeline.
//! let mut tracker = EyeTracker::new(config, models);
//! let mut motion = EyeMotionGenerator::with_seed(7);
//! let stats = tracker.run_sequence(&mut motion, 100);
//! println!("mean gaze error: {:.2}°", stats.mean_error_deg());
//! ```

pub use eyecod_accel as accel;
pub use eyecod_core as core;
pub use eyecod_eyedata as eyedata;
pub use eyecod_faults as faults;
pub use eyecod_models as models;
pub use eyecod_optics as optics;
pub use eyecod_platforms as platforms;
pub use eyecod_serve as serve;
pub use eyecod_telemetry as telemetry;
pub use eyecod_tensor as tensor;
