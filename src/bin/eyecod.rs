//! The `eyecod` command-line tool: run the tracker, simulate the
//! accelerator, compare platforms, inspect models and design masks from
//! one binary.
//!
//! ```text
//! eyecod track     [--frames N] [--lens] [--period N] [--seed S] [--adaptive-roi]
//! eyecod simulate  [--orchestration tm|cc|pm] [--no-swpr] [--no-reuse] [--lanes N] [--lens]
//! eyecod compare
//! eyecod model     <ritnet|fbnet|resnet|mobilenet|unet> [--size N] [--full]
//! eyecod mask      [--scene N] [--sensor N] [--seed K] [--raw]
//! ```

use eyecod::accel::config::AcceleratorConfig;
use eyecod::accel::schedule::{Orchestration, WindowSimulator};
use eyecod::accel::workload::EyeCodWorkload;
use eyecod::core::tracker::{EyeTracker, RoiSizing, TrackerConfig};
use eyecod::core::training::{train_tracker_models, TrainingSetup};
use eyecod::eyedata::EyeMotionGenerator;
use eyecod::models::summary::{layer_table, ModelSummary};
use eyecod::optics::calibrate::tune_epsilon;
use eyecod::optics::imaging::FlatCam;
use eyecod::optics::mask::SeparableMask;
use eyecod::optics::mat::Mat;
use eyecod::optics::sensor::SensorModel;
use std::process::ExitCode;

/// Minimal flag parser: `--key value` and boolean `--flag`.
struct Args {
    positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

impl Args {
    fn parse(raw: &[String]) -> Args {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut i = 0;
        while i < raw.len() {
            if let Some(name) = raw[i].strip_prefix("--") {
                let value = raw.get(i + 1).filter(|v| !v.starts_with("--")).cloned();
                if value.is_some() {
                    i += 1;
                }
                flags.push((name.to_owned(), value));
            } else {
                positional.push(raw[i].clone());
            }
            i += 1;
        }
        Args { positional, flags }
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    fn get_usize(&self, name: &str, default: usize) -> usize {
        self.get(name)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| die(&format!("--{name} expects a number")))
            })
            .unwrap_or(default)
    }

    fn get_u64(&self, name: &str, default: u64) -> u64 {
        self.get(name)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| die(&format!("--{name} expects a number")))
            })
            .unwrap_or(default)
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("run `eyecod help` for usage");
    std::process::exit(2);
}

fn usage() {
    println!("eyecod — FlatCam eye-tracking co-design toolkit\n");
    println!("subcommands:");
    println!("  track     run the predict-then-focus tracker on a synthetic sequence");
    println!("            [--frames N=100] [--lens] [--period N=10] [--seed S=7] [--adaptive-roi]");
    println!("  simulate  run the cycle-level accelerator simulator on the EyeCoD workload");
    println!(
        "            [--orchestration tm|cc|pm] [--no-swpr] [--no-reuse] [--lanes N=128] [--lens]"
    );
    println!("  compare   print the Fig. 14 platform comparison");
    println!("  model     print a network's layer table and summary");
    println!("            <ritnet|fbnet|resnet|mobilenet|unet> [--size N] [--full]");
    println!("  mask      analyse a coded mask design");
    println!("            [--scene N=48] [--sensor N=64] [--seed K=17] [--raw]");
}

fn cmd_track(args: &Args) {
    let frames = args.get_usize("frames", 100);
    let seed = args.get_u64("seed", 7);
    let mut config = if args.has("lens") {
        TrackerConfig::small_lens()
    } else {
        TrackerConfig::small()
    };
    config.roi_period = args.get_usize("period", 10);
    if args.has("adaptive-roi") {
        config.roi_sizing = RoiSizing::ScleraAdaptive;
    }
    println!(
        "training proxy models ({} camera)...",
        if config.flatcam { "FlatCam" } else { "lens" }
    );
    let models = train_tracker_models(&TrainingSetup::quick(), &config);
    let mut tracker = EyeTracker::new(config, models);
    let mut motion = EyeMotionGenerator::with_seed(seed);
    let stats = tracker.run_sequence(&mut motion, frames);
    println!("frames:        {}", stats.frames);
    println!("ROI refreshes: {}", stats.roi_refreshes);
    println!("mean error:    {:.2}°", stats.mean_error_deg());
    println!("max error:     {:.2}°", stats.max_error_deg);
}

fn cmd_simulate(args: &Args) {
    let mut cfg = AcceleratorConfig::paper_default();
    cfg.mac_lanes = args.get_usize("lanes", cfg.mac_lanes);
    if args.has("no-swpr") {
        cfg.swpr_buffer = false;
    }
    if args.has("no-reuse") {
        cfg.intra_channel_reuse = false;
    }
    cfg.orchestration = match args.get("orchestration").unwrap_or("pm") {
        "tm" => Orchestration::TimeMultiplexed,
        "cc" => Orchestration::Concurrent,
        "pm" => Orchestration::PartialTimeMultiplexed,
        other => die(&format!("unknown orchestration '{other}' (tm|cc|pm)")),
    };
    let workload = if args.has("lens") {
        EyeCodWorkload::lens_based().into_workload()
    } else {
        EyeCodWorkload::paper_default().into_workload()
    };
    let sim = WindowSimulator::new(cfg.clone());
    let r = sim.run_window(&workload);
    println!("workload:        {}", r.workload);
    println!("orchestration:   {:?}", r.orchestration);
    println!("throughput:      {:.1} FPS", r.fps);
    println!("utilisation:     {:.1}%", r.avg_utilization * 100.0);
    println!("energy/frame:    {:.4} mJ", r.energy_per_frame_mj);
    println!(
        "worst frame:     {:.0} us",
        r.worst_frame_cycles as f64 / cfg.clock_mhz
    );
    println!("seg absorbed:    {:.0}%", r.seg_absorbed * 100.0);
}

fn cmd_compare() {
    println!(
        "{:<10} {:>10} {:>14} {:>10}",
        "platform", "FPS", "frames/J", "norm. eff."
    );
    for r in eyecod::platforms::compare_all() {
        println!(
            "{:<10} {:>10.2} {:>14.1} {:>10.4}",
            r.name, r.fps, r.frames_per_joule, r.norm_energy_eff
        );
    }
}

fn cmd_model(args: &Args) {
    let name = args
        .positional
        .first()
        .unwrap_or_else(|| die("model needs a name (ritnet|fbnet|resnet|mobilenet|unet)"));
    let spec = match name.as_str() {
        "ritnet" => eyecod::models::ritnet::spec(args.get_usize("size", 128)),
        "unet" => eyecod::models::unet::spec(args.get_usize("size", 512)),
        "fbnet" => eyecod::models::fbnet::spec(96, 160),
        "resnet" => {
            eyecod::models::resnet::spec(args.get_usize("size", 224), args.get_usize("size", 224))
        }
        "mobilenet" => eyecod::models::mobilenet::spec(96, 160),
        other => die(&format!("unknown model '{other}'")),
    };
    if args.has("full") {
        print!("{}", layer_table(&spec));
    }
    let s = ModelSummary::of(&spec);
    println!("model:   {}", s.name);
    println!("layers:  {} ({} compute)", s.layers, s.compute_layers);
    println!("params:  {:.3} M", s.params as f64 / 1e6);
    println!(
        "FLOPs:   {:.3} G (paper MAC convention)",
        s.macs as f64 / 1e9
    );
    println!(
        "peak activations: {:.2} KB (int8, unpartitioned)",
        s.peak_activation_elems as f64 / 1024.0
    );
}

fn cmd_mask(args: &Args) {
    let scene = args.get_usize("scene", 48);
    let sensor = args.get_usize("sensor", 64);
    let seed = args.get_usize("seed", 17) as u32;
    let mask = if args.has("raw") {
        SeparableMask::mls(sensor, scene, seed)
    } else {
        SeparableMask::mls_differential(sensor, scene, seed)
    };
    let (cl, cr) = mask.condition_numbers();
    println!(
        "mask:        {}",
        if args.has("raw") {
            "raw 0/1"
        } else {
            "differential ±1"
        }
    );
    println!("geometry:    {sensor}x{sensor} sensor -> {scene}x{scene} scene");
    println!("condition:   {cl:.1} / {cr:.1}");
    println!("open frac:   {:.2}", mask.open_fraction());
    let cam = FlatCam::new(mask, SensorModel::nir_eye_tracking());
    let calib = Mat::from_fn(scene, scene, |r, c| {
        ((r / 4 + c / 4) % 2) as f64 * 0.6 + 0.2 // checkerboard chart
    });
    let (eps, psnr) = tune_epsilon(&cam, std::slice::from_ref(&calib), -8.0, 0.0, 14);
    println!("tuned eps:   {eps:.2e}");
    println!("chart PSNR:  {psnr:.1} dB");
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = raw.first().cloned() else {
        usage();
        return ExitCode::from(2);
    };
    let args = Args::parse(&raw[1..]);
    match cmd.as_str() {
        "track" => cmd_track(&args),
        "simulate" => cmd_simulate(&args),
        "compare" => cmd_compare(),
        "model" => cmd_model(&args),
        "mask" => cmd_mask(&args),
        "help" | "--help" | "-h" => usage(),
        other => {
            eprintln!("unknown subcommand '{other}'");
            usage();
            return ExitCode::from(2);
        }
    }
    ExitCode::SUCCESS
}
