//! Offline drop-in subset of `criterion`.
//!
//! Implements the benchmark surface the workspace uses — `Criterion`,
//! `bench_function`, `Bencher::iter`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros — on top of plain
//! `std::time::Instant` wall-clock sampling. There is no statistical
//! regression analysis or HTML report; each benchmark prints its median,
//! mean, and spread so relative comparisons (the only thing the repo's
//! benches are used for) still work.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value sink preventing the optimiser from deleting benchmarked work.
#[inline]
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Benchmark driver; collects samples and prints a summary per benchmark.
pub struct Criterion {
    sample_size: usize,
    /// Target wall-clock time for one sample; iteration count is calibrated
    /// so a sample takes roughly this long.
    target_sample_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            target_sample_time: Duration::from_millis(20),
        }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark records.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark and prints its timing summary.
    pub fn bench_function<F>(&mut self, name: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        // calibration pass: find an iteration count whose sample lands near
        // the target sample time, so fast and slow benches get comparable
        // measurement quality
        let mut iters: u64 = 1;
        let per_iter = loop {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            routine(&mut b);
            let per_iter = b.elapsed.as_secs_f64() / iters as f64;
            if b.elapsed >= self.target_sample_time / 4 || iters >= 1 << 20 {
                break per_iter;
            }
            let target = self.target_sample_time.as_secs_f64();
            let next = (target / per_iter.max(1e-9)).ceil() as u64;
            iters = next.clamp(iters + 1, (iters * 100).max(2)).min(1 << 20);
        };
        let iters = ((self.target_sample_time.as_secs_f64() / per_iter.max(1e-9)).ceil() as u64)
            .clamp(1, 1 << 20);

        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            routine(&mut b);
            samples.push(b.elapsed.as_secs_f64() / iters as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let (lo, hi) = (samples[0], samples[samples.len() - 1]);
        println!(
            "{name:<44} time: [{} {} {}] mean {} ({} samples x {} iters)",
            fmt_time(lo),
            fmt_time(median),
            fmt_time(hi),
            fmt_time(mean),
            samples.len(),
            iters,
        );
        self
    }

    /// Flushes pending state (no-op; exists for API compatibility).
    pub fn final_summary(&mut self) {}
}

/// Timer handle passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `routine` (the measured region).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Declares a benchmark group. Both upstream forms are accepted:
/// `criterion_group!(benches, f1, f2)` and the struct-ish
/// `criterion_group! { name = benches; config = ...; targets = f1, f2 }`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
            criterion.final_summary();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo bench passes `--bench` (and any user filter args); the
            // shim runs everything regardless
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default().sample_size(2);
        let mut calls = 0u64;
        c.bench_function("smoke", |b| {
            calls += 1;
            b.iter(|| black_box(3u64) * 7)
        });
        // calibration + 2 samples => at least 3 invocations
        assert!(calls >= 3);
    }

    #[test]
    fn group_macros_compile() {
        fn routine(c: &mut Criterion) {
            c.bench_function("noop", |b| b.iter(|| 1u32 + 1));
        }
        criterion_group!(shim_smoke, routine);
        criterion_group! {
            name = shim_smoke_cfg;
            config = Criterion::default().sample_size(2);
            targets = routine
        }
        shim_smoke_cfg();
        let _ = shim_smoke;
    }
}
