//! Value-generation strategies for the offline proptest shim.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating random values of one type.
///
/// Unlike upstream proptest there is no value tree and no shrinking — a
/// strategy is just a deterministic function of the case RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (needed by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn Strategy<Value = V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between same-typed strategies.
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds a union; panics on an empty arm list.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let pick = rng.below(self.arms.len() as u64) as usize;
        self.arms[pick].generate(rng)
    }
}

// --- ranges ----------------------------------------------------------------

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "empty range strategy");
                let span = (e as i128 - s as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (s as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "empty range strategy");
                s + (rng.unit_f64() as $t) * (e - s)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

// --- tuples ----------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

// --- any::<T>() ------------------------------------------------------------

/// Full-domain strategy selected by [`any`].
pub struct Any<T>(PhantomData<T>);

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

/// The strategy covering `T`'s whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::for_case("ranges_respect_bounds", 0);
        for _ in 0..2000 {
            let x = (5usize..9).generate(&mut rng);
            assert!((5..9).contains(&x));
            let y = (-3i32..=3).generate(&mut rng);
            assert!((-3..=3).contains(&y));
            let f = (-1.5f64..2.5).generate(&mut rng);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn int_ranges_hit_every_value() {
        let mut rng = TestRng::for_case("int_ranges_hit_every_value", 0);
        let mut seen = [false; 4];
        for _ in 0..500 {
            seen[(0usize..4).generate(&mut rng)] = true;
        }
        assert_eq!(seen, [true; 4]);
    }

    #[test]
    fn union_uses_all_arms() {
        let u = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed()]);
        let mut rng = TestRng::for_case("union_uses_all_arms", 0);
        let mut seen = [false; 2];
        for _ in 0..100 {
            seen[u.generate(&mut rng) as usize - 1] = true;
        }
        assert_eq!(seen, [true; 2]);
    }

    #[test]
    fn map_and_tuples_compose() {
        let strat = ((0u32..3), (10u32..13)).prop_map(|(a, b)| a + b);
        let mut rng = TestRng::for_case("map_and_tuples_compose", 0);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((10..16).contains(&v));
        }
    }
}
