//! Offline drop-in subset of `proptest`.
//!
//! Supports the slice of the proptest API the workspace's property suites
//! use: range/`Just`/tuple strategies, `prop_map`, `prop_oneof!`,
//! `collection::vec`, `any::<T>()`, the [`proptest!`] macro with
//! `#![proptest_config(...)]`, and the `prop_assert*` family.
//!
//! There is **no shrinking**: failing inputs are reported verbatim with
//! the case seed instead of being minimised. Case generation is fully
//! deterministic — seeds derive from a fixed base so a red test reproduces
//! identically in CI and locally.
//!
//! Failure **persistence** matches upstream's file format: a failing novel
//! case appends a `cc <seed> # shrinks to <inputs>` line to the test
//! file's `.proptest-regressions` sibling (created with the standard
//! header, so upstream tooling reads it unchanged), and every saved seed
//! replays before new cases are generated. Set
//! `PROPTEST_DISABLE_FAILURE_PERSISTENCE` to suppress writing.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
pub use test_runner::{ProptestConfig, TestRng};

/// Everything the `proptest::prelude::*` import is expected to provide.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn holds(x in 0usize..100, y in -1.0f32..1.0) { prop_assert!(x < 100); }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg); $($rest)*);
    };
    (@cfg ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                use $crate::strategy::Strategy as _;
                let config: $crate::test_runner::ProptestConfig = $cfg;
                // saved failures replay before any novel case, exactly as
                // upstream does with its regressions files
                let saved = $crate::test_runner::persistence::saved_cases(file!());
                for (index, mut rng) in saved.into_iter().enumerate() {
                    $(let $arg = ($strat).generate(&mut rng);)*
                    let guard = $crate::test_runner::CaseGuard::for_saved(
                        stringify!($name),
                        index,
                        &format!(
                            concat!($("    ", stringify!($arg), " = {:?}\n",)*),
                            $(&$arg,)*
                        ),
                    );
                    { $body }
                    guard.disarm();
                }
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    // the pre-generation state is the replay seed
                    let state_hex = rng.state_hex();
                    $(let $arg = ($strat).generate(&mut rng);)*
                    let guard = $crate::test_runner::CaseGuard::new(
                        stringify!($name),
                        case,
                        &format!(
                            concat!($("    ", stringify!($arg), " = {:?}\n",)*),
                            $(&$arg,)*
                        ),
                    )
                    .with_persistence(file!(), state_hex);
                    { $body }
                    guard.disarm();
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            panic!("prop_assert failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            panic!("prop_assert failed: {}: {}", stringify!($cond), format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            panic!("prop_assert_eq failed: {a:?} != {b:?}");
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            panic!("prop_assert_eq failed: {a:?} != {b:?}: {}", format!($($fmt)+));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            panic!("prop_assert_ne failed: both sides are {a:?}");
        }
    }};
}

/// Chooses uniformly between strategies (weights are not supported).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        use $crate::strategy::Strategy as _;
        $crate::strategy::Union::new(vec![$(($strat).boxed()),+])
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_maps_compose(
            x in 0usize..10,
            y in (-1.0f64..1.0).prop_map(|v| v * 2.0),
            flag in any::<bool>(),
            v in collection::vec(0u32..5, 3..7),
        ) {
            prop_assert!(x < 10);
            prop_assert!((-2.0..2.0).contains(&y));
            prop_assert!(matches!(flag, true | false));
            prop_assert!((3..7).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        #[test]
        fn oneof_hits_every_arm(pick in prop_oneof![Just(1u8), Just(2u8), Just(3u8)]) {
            prop_assert!((1..=3).contains(&pick));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a: Vec<u64> = (0..5)
            .map(|c| TestRng::for_case("x", c).next_u64())
            .collect();
        let b: Vec<u64> = (0..5)
            .map(|c| TestRng::for_case("x", c).next_u64())
            .collect();
        assert_eq!(a, b);
    }
}
