//! Case generation and failure reporting for the offline proptest shim.

/// How many cases a [`crate::proptest!`] block runs per test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of generated cases.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // upstream defaults to 256; the workspace's suites all override
        // this, so pick a CI-friendly middle ground
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic per-case generator (SplitMix64-seeded xoshiro256**).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// Builds the generator for `(test, case)`: stable across runs and
    /// platforms so failures reproduce exactly.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the fully qualified test name
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut sm = h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        if s == [0, 0, 0, 0] {
            s[0] = 1;
        }
        TestRng { s }
    }

    /// Next raw 64-bit word.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)` with 53 mantissa bits.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, bound)`.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        self.next_u64() % bound
    }
}

/// Prints the failing case's inputs if the test body panics.
///
/// The shim has no shrinking, so faithful reporting of the raw case is the
/// entire debugging story — the guard fires on unwind and echoes the case
/// index plus every generated argument.
pub struct CaseGuard {
    armed: bool,
    name: &'static str,
    case: u32,
    inputs: String,
}

impl CaseGuard {
    /// Arms a guard for one case.
    pub fn new(name: &'static str, case: u32, inputs: &str) -> Self {
        CaseGuard {
            armed: true,
            name,
            case,
            inputs: inputs.to_string(),
        }
    }

    /// Disarms after the case body completed without panicking.
    pub fn disarm(mut self) {
        self.armed = false;
    }
}

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if self.armed {
            eprintln!(
                "proptest: `{}` failed at case {} with inputs:\n{}",
                self.name, self.case, self.inputs
            );
        }
    }
}
