//! Case generation and failure reporting for the offline proptest shim.

/// How many cases a [`crate::proptest!`] block runs per test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of generated cases.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // upstream defaults to 256; the workspace's suites all override
        // this, so pick a CI-friendly middle ground
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic per-case generator (SplitMix64-seeded xoshiro256**).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// Builds the generator for `(test, case)`: stable across runs and
    /// platforms so failures reproduce exactly.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the fully qualified test name
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut sm = h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        if s == [0, 0, 0, 0] {
            s[0] = 1;
        }
        TestRng { s }
    }

    /// Next raw 64-bit word.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)` with 53 mantissa bits.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, bound)`.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        self.next_u64() % bound
    }

    /// The full generator state as 64 lowercase hex characters — the seed
    /// format of `.proptest-regressions` `cc` lines. Capturing the state
    /// *before* any values are drawn replays the case exactly.
    pub fn state_hex(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(64);
        for w in self.s {
            let _ = write!(out, "{w:016x}");
        }
        out
    }

    /// Rebuilds a generator from [`TestRng::state_hex`] output. Returns
    /// `None` for malformed hex or the all-zero state (invalid for
    /// xoshiro).
    pub fn from_state_hex(hex: &str) -> Option<Self> {
        if hex.len() != 64 || !hex.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        let mut s = [0u64; 4];
        for (i, slot) in s.iter_mut().enumerate() {
            *slot = u64::from_str_radix(&hex[i * 16..(i + 1) * 16], 16).ok()?;
        }
        if s == [0, 0, 0, 0] {
            return None;
        }
        Some(TestRng { s })
    }
}

/// Reading and writing `.proptest-regressions` files in the upstream
/// textual format, so the shim's saved cases stay tool-compatible (same
/// header, same `cc <seed> # shrinks to <inputs>` lines).
pub mod persistence {
    use super::TestRng;
    use std::io::Write as _;
    use std::path::{Path, PathBuf};

    /// The upstream file header, emitted verbatim when a regressions file
    /// is first created.
    pub const HEADER: &str = "\
# Seeds for failure cases proptest has generated in the past. It is
# automatically read and these particular cases re-run before any
# novel cases are generated.
#
# It is recommended to check this file in to source control so that
# everyone who runs the test benefits from these saved cases.
";

    /// Whether `PROPTEST_DISABLE_FAILURE_PERSISTENCE` turns writing off
    /// (any non-empty value other than `0`).
    fn disabled() -> bool {
        match std::env::var("PROPTEST_DISABLE_FAILURE_PERSISTENCE") {
            Ok(v) => !v.trim().is_empty() && v.trim() != "0",
            Err(_) => false,
        }
    }

    /// Resolves a `file!()` path (workspace-root-relative) against the
    /// test's working directory (the *package* root under `cargo test`) by
    /// stripping leading components until the file exists.
    fn resolve_source(source: &str) -> PathBuf {
        let mut p = Path::new(source);
        loop {
            if p.exists() {
                return p.to_path_buf();
            }
            let mut comps = p.components();
            comps.next();
            let rest = comps.as_path();
            if rest.as_os_str().is_empty() {
                return PathBuf::from(source);
            }
            p = rest;
        }
    }

    /// The regressions file sitting next to `source` (upstream convention:
    /// `tests/foo.rs` → `tests/foo.proptest-regressions`).
    pub fn regressions_path(source: &str) -> PathBuf {
        resolve_source(source).with_extension("proptest-regressions")
    }

    /// Parses `cc` seed lines out of a regressions file body. Comment
    /// lines, blanks and malformed seeds are skipped, matching upstream's
    /// tolerant reader.
    pub fn parse_saved(body: &str) -> Vec<TestRng> {
        body.lines()
            .filter_map(|line| {
                let hex = line.trim().strip_prefix("cc ")?.split_whitespace().next()?;
                TestRng::from_state_hex(hex)
            })
            .collect()
    }

    /// The saved failure seeds for the test file `source` (via `file!()`),
    /// replayed by [`crate::proptest!`] before any novel cases.
    pub fn saved_cases(source: &str) -> Vec<TestRng> {
        match std::fs::read_to_string(regressions_path(source)) {
            Ok(body) => parse_saved(&body),
            Err(_) => Vec::new(),
        }
    }

    /// Collapses the guard's multi-line input dump into the one-line
    /// `# shrinks to` comment.
    pub fn one_line(inputs: &str) -> String {
        inputs
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty())
            .collect::<Vec<_>>()
            .join(", ")
    }

    /// Appends a failing seed to `source`'s regressions file (creating it
    /// with the standard header first). A no-op when
    /// `PROPTEST_DISABLE_FAILURE_PERSISTENCE` is set.
    pub fn persist_failure(source: &str, state_hex: &str, inputs: &str) {
        if disabled() {
            return;
        }
        let path = regressions_path(source);
        let fresh = !path.exists();
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path);
        let Ok(mut f) = file else {
            eprintln!(
                "proptest: could not persist failing seed to {}",
                path.display()
            );
            return;
        };
        if fresh {
            let _ = f.write_all(HEADER.as_bytes());
        }
        let _ = writeln!(f, "cc {state_hex} # shrinks to {}", one_line(inputs));
        eprintln!("proptest: persisted failing seed to {}", path.display());
    }
}

/// Prints the failing case's inputs if the test body panics, and persists
/// the failing seed to the file's `.proptest-regressions`.
///
/// The shim has no shrinking, so faithful reporting of the raw case is the
/// entire debugging story — the guard fires on unwind, echoes the case
/// index plus every generated argument, and (for novel cases) appends the
/// pre-generation rng state as a `cc` line so the next run replays the
/// failure before generating anything new.
pub struct CaseGuard {
    armed: bool,
    name: &'static str,
    label: String,
    inputs: String,
    /// `(source file, pre-generation rng state)` — present only for novel
    /// cases; replayed saved cases are already in the file.
    persist: Option<(&'static str, String)>,
}

impl CaseGuard {
    /// Arms a guard for one generated case.
    pub fn new(name: &'static str, case: u32, inputs: &str) -> Self {
        CaseGuard {
            armed: true,
            name,
            label: format!("case {case}"),
            inputs: inputs.to_string(),
            persist: None,
        }
    }

    /// Arms a guard for a case replayed from the regressions file.
    pub fn for_saved(name: &'static str, index: usize, inputs: &str) -> Self {
        CaseGuard {
            armed: true,
            name,
            label: format!("saved case {index} (replayed from the regressions file)"),
            inputs: inputs.to_string(),
            persist: None,
        }
    }

    /// Persist the failing seed to `source`'s regressions file if this
    /// case fails (builder style; `state_hex` is the rng state *before*
    /// generation).
    pub fn with_persistence(mut self, source: &'static str, state_hex: String) -> Self {
        self.persist = Some((source, state_hex));
        self
    }

    /// Disarms after the case body completed without panicking.
    pub fn disarm(mut self) {
        self.armed = false;
    }
}

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if self.armed {
            eprintln!(
                "proptest: `{}` failed at {} with inputs:\n{}",
                self.name, self.label, self.inputs
            );
            if let Some((source, state_hex)) = self.persist.take() {
                persistence::persist_failure(source, &state_hex, &self.inputs);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_hex_round_trips() {
        let rng = TestRng::for_case("some::test", 17);
        let hex = rng.state_hex();
        assert_eq!(hex.len(), 64);
        let mut a = rng.clone();
        let mut b = TestRng::from_state_hex(&hex).expect("valid hex");
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn malformed_seeds_are_rejected() {
        assert!(TestRng::from_state_hex("").is_none());
        assert!(TestRng::from_state_hex(&"z".repeat(64)).is_none());
        assert!(
            TestRng::from_state_hex(&"0".repeat(64)).is_none(),
            "all-zero state"
        );
        assert!(TestRng::from_state_hex(&"a".repeat(63)).is_none(), "short");
    }

    #[test]
    fn saved_case_parser_reads_the_upstream_format() {
        let seed = TestRng::for_case("t", 0).state_hex();
        let body = format!(
            "{}# a retention note\n\ncc {seed} # shrinks to x = 3\ncc nonsense # ignored\n",
            persistence::HEADER
        );
        let saved = persistence::parse_saved(&body);
        assert_eq!(saved.len(), 1);
        assert_eq!(saved[0].state_hex(), seed);
    }

    #[test]
    fn shrinks_to_comment_is_one_line() {
        assert_eq!(
            persistence::one_line("    x = 3\n    y = [1, 2]\n"),
            "x = 3, y = [1, 2]"
        );
    }

    #[test]
    fn header_matches_upstream_verbatim() {
        assert!(persistence::HEADER.starts_with("# Seeds for failure cases proptest"));
        assert!(persistence::HEADER.ends_with("benefits from these saved cases.\n"));
        assert!(persistence::HEADER.lines().all(|l| l.starts_with('#')));
    }
}
