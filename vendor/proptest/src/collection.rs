//! Collection strategies (`collection::vec`) for the offline proptest shim.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// A length specification: either an exact size or a half-open range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec length range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// The result of [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generates a `Vec` whose elements come from `element` and whose length
/// comes from `size` (an exact `usize` or a `Range<usize>`).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64;
        let len = self.size.lo
            + if span > 1 {
                rng.below(span) as usize
            } else {
                0
            };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_length_is_exact() {
        let strat = vec(0u32..10, 7);
        let mut rng = TestRng::for_case("exact_length_is_exact", 0);
        for _ in 0..50 {
            assert_eq!(strat.generate(&mut rng).len(), 7);
        }
    }

    #[test]
    fn ranged_length_spans_range() {
        let strat = vec(0u32..10, 2..5);
        let mut rng = TestRng::for_case("ranged_length_spans_range", 0);
        let mut seen = [false; 3];
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            seen[v.len() - 2] = true;
        }
        assert_eq!(seen, [true; 3]);
    }
}
