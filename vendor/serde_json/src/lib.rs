//! Offline drop-in subset of `serde_json`: pretty printing and parsing of
//! the vendored [`serde::Value`] model.

pub use serde::{Error, Number, Value};

/// Serialises `value` as compact JSON.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialises `value` as human-readable JSON (2-space indent).
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses a value of `T` from JSON text.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing input at byte {}", p.pos)));
    }
    T::from_value(&v)
}

// --- writer ----------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            write_seq(out, items.iter(), indent, depth, ('[', ']'), |o, x, d| {
                write_value(o, x, indent, d)
            })
        }
        Value::Object(fields) => write_seq(
            out,
            fields.iter(),
            indent,
            depth,
            ('{', '}'),
            |o, (k, x), d| {
                write_string(o, k);
                o.push(':');
                if indent.is_some() {
                    o.push(' ');
                }
                write_value(o, x, indent, d);
            },
        ),
    }
}

fn write_seq<I: ExactSizeIterator>(
    out: &mut String,
    items: I,
    indent: Option<usize>,
    depth: usize,
    (open, close): (char, char),
    mut each: impl FnMut(&mut String, I::Item, usize),
) {
    out.push(open);
    let n = items.len();
    for (i, item) in items.enumerate() {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        each(out, item, depth + 1);
        if i + 1 < n {
            out.push(',');
        }
    }
    if n > 0 {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * depth));
        }
    }
    out.push(close);
}

fn write_number(out: &mut String, n: Number) {
    match n {
        Number::U64(u) => out.push_str(&u.to_string()),
        Number::I64(i) => out.push_str(&i.to_string()),
        Number::F64(f) => {
            if f.is_finite() {
                if f == f.trunc() && f.abs() < 1e15 {
                    // keep integral floats readable (serde_json prints 1.0)
                    out.push_str(&format!("{f:.1}"));
                } else {
                    out.push_str(&format!("{f}"));
                }
            } else {
                // JSON has no inf/NaN; serde_json errors, we degrade to null
                out.push_str("null");
            }
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// --- parser ----------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if b" \t\n\r".contains(b) {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(Error::msg(format!("expected `{kw}` at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.eat_keyword("null").map(|_| Value::Null),
            Some(b't') => self.eat_keyword("true").map(|_| Value::Bool(true)),
            Some(b'f') => self.eat_keyword("false").map(|_| Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::msg(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::msg(format!("bad array at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error::msg(format!("bad object at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::msg("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::msg("bad \\u escape"))?;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::msg("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::msg("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // consume one UTF-8 code point
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| Error::msg("invalid UTF-8 in string"))?;
                    let ch = text.chars().next().unwrap();
                    s.push(ch);
                    self.pos += ch.len_utf8();
                }
                None => return Err(Error::msg("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U64(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I64(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::F64(f)))
            .map_err(|_| Error::msg(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_vectors() {
        let s = to_string_pretty(&vec![1i32, 2, 3]).unwrap();
        let back: Vec<i32> = from_str(&s).unwrap();
        assert_eq!(back, vec![1, 2, 3]);
    }

    #[test]
    fn parses_nested_objects() {
        let v: Value = from_str(r#"{"a": [1, 2.5, "x\n"], "b": {"c": true, "d": null}}"#).unwrap();
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Value::Bool(true)));
        match v.get("a") {
            Some(Value::Array(items)) => {
                assert_eq!(items[2], Value::String("x\n".into()));
            }
            other => panic!("bad array: {other:?}"),
        }
    }

    #[test]
    fn pretty_output_is_indented() {
        let s = to_string_pretty(&vec![vec![1u32]]).unwrap();
        assert_eq!(s, "[\n  [\n    1\n  ]\n]");
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Vec<i32>>("[1, 2,").is_err());
        assert!(from_str::<Vec<i32>>("[1] trailing").is_err());
    }
}
