//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of `rand` it actually uses: a deterministic
//! seedable generator ([`rngs::StdRng`]), the [`Rng`] extension trait
//! (`gen`, `gen_range`, `gen_bool`), [`SeedableRng::seed_from_u64`] and
//! [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256** seeded through SplitMix64 — statistically
//! strong for simulation workloads and stable across platforms and
//! releases, which the test-suite's determinism contracts rely on. The
//! streams differ from upstream `rand`'s ChaCha-based `StdRng`, which is
//! fine: nothing in the workspace pins exact draw values, only
//! reproducibility per seed.

pub mod rngs;
pub mod seq;

/// A source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit word (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of generators from seed material.
pub trait SeedableRng: Sized {
    /// Deterministically builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be produced uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the generator's standard distribution.
    fn draw(rng: &mut impl RngCore) -> Self;
}

impl Standard for u64 {
    fn draw(rng: &mut impl RngCore) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw(rng: &mut impl RngCore) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn draw(rng: &mut impl RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw(rng: &mut impl RngCore) -> Self {
        // 53 uniform mantissa bits in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw(rng: &mut impl RngCore) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample(self, rng: &mut impl RngCore) -> T;
}

macro_rules! impl_float_range {
    ($t:ty) => {
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, rng: &mut impl RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as Standard>::draw(rng);
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut impl RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = <$t as Standard>::draw(rng);
                lo + (hi - lo) * u
            }
        }
    };
}

impl_float_range!(f32);
impl_float_range!(f64);

macro_rules! impl_int_range {
    ($t:ty) => {
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, rng: &mut impl RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (self.start as i128 + r as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut impl RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let r = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (lo as i128 + r as i128) as $t
            }
        }
    };
}

impl_int_range!(usize);
impl_int_range!(u64);
impl_int_range!(u32);
impl_int_range!(u16);
impl_int_range!(u8);
impl_int_range!(i64);
impl_int_range!(i32);
impl_int_range!(isize);

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        <f64 as Standard>::draw(self) < p
    }
}

impl<R: RngCore> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f: f32 = rng.gen_range(-1.5..2.5);
            assert!((-1.5..2.5).contains(&f));
            let i: i64 = rng.gen_range(-2..=2);
            assert!((-2..=2).contains(&i));
            let u: usize = rng.gen_range(3..10);
            assert!((3..10).contains(&u));
        }
    }

    #[test]
    fn uniform_floats_cover_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.9)).count();
        assert!((8800..9200).contains(&hits), "hits {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use crate::seq::SliceRandom;
        let mut v: Vec<usize> = (0..100).collect();
        let mut rng = StdRng::seed_from_u64(9);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }
}
