//! Offline drop-in subset of `serde`.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the serialisation surface it actually uses: `#[derive(Serialize,
//! Deserialize)]` on plain structs and enums, rendered to/parsed from JSON
//! by the sibling `serde_json` shim.
//!
//! Instead of upstream serde's visitor architecture, values funnel through
//! one concrete [`Value`] tree — dramatically simpler, and fully adequate
//! for the workspace's "write experiment rows as JSON" needs. Enum
//! encoding follows serde's externally-tagged default: unit variants are
//! strings, data variants are `{"Variant": ...}` objects.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;
use std::fmt;

/// A JSON-shaped value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (kept in the widest lossless native form).
    Number(Number),
    /// A string.
    String(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved for readable output.
    Object(Vec<(String, Value)>),
}

/// A JSON number.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
}

impl Value {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The object fields as a map (for error-tolerant consumers).
    pub fn as_map(&self) -> Option<BTreeMap<&str, &Value>> {
        match self {
            Value::Object(fields) => Some(fields.iter().map(|(k, v)| (k.as_str(), v)).collect()),
            _ => None,
        }
    }
}

/// Serialisation/deserialisation failure.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl Error {
    /// Builds an error with a formatted message.
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

/// Types renderable to a [`Value`].
pub trait Serialize {
    /// Converts `self` into the JSON value model.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`].
pub trait Deserialize: Sized {
    /// Parses `self` out of the JSON value model.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

macro_rules! impl_ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Number(Number::U64(*self as u64)) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(Number::U64(n)) => Ok(*n as $t),
                    Value::Number(Number::I64(n)) if *n >= 0 => Ok(*n as $t),
                    Value::Number(Number::F64(f)) if f.fract() == 0.0 && *f >= 0.0 => Ok(*f as $t),
                    _ => Err(Error::msg(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Number(Number::I64(*self as i64)) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(Number::I64(n)) => Ok(*n as $t),
                    Value::Number(Number::U64(n)) => Ok(*n as $t),
                    Value::Number(Number::F64(f)) if f.fract() == 0.0 => Ok(*f as $t),
                    _ => Err(Error::msg(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}

macro_rules! impl_ser_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Number(Number::F64(*self as f64)) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(Number::F64(f)) => Ok(*f as $t),
                    Value::Number(Number::I64(n)) => Ok(*n as $t),
                    Value::Number(Number::U64(n)) => Ok(*n as $t),
                    _ => Err(Error::msg(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_ser_uint!(u8, u16, u32, u64, usize);
impl_ser_int!(i8, i16, i32, i64, isize);
impl_ser_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::msg("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            _ => Err(Error::msg("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::msg("expected array")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! impl_ser_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(items) => {
                        let mut it = items.iter();
                        Ok(($({
                            let _ = $idx;
                            $name::from_value(
                                it.next().ok_or_else(|| Error::msg("tuple too short"))?,
                            )?
                        },)+))
                    }
                    _ => Err(Error::msg("expected tuple array")),
                }
            }
        }
    )*};
}

impl_ser_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
}
