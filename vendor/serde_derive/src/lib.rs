//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the vendored
//! serde shim.
//!
//! Implemented directly on `proc_macro::TokenStream` (no `syn`/`quote`,
//! which are unavailable offline). Supports what the workspace uses:
//! non-generic structs with named fields, tuple structs, and enums with
//! unit, tuple and struct variants. Enum encoding is serde's
//! externally-tagged default.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// A parsed `struct`/`enum` shape.
enum Shape {
    /// `struct S { a: T, b: U }`
    NamedStruct { name: String, fields: Vec<String> },
    /// `struct S(T, U);`
    TupleStruct { name: String, arity: usize },
    /// `enum E { Unit, Tuple(T), Struct { a: T } }`
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    let body = match &shape {
        Shape::NamedStruct { fields, .. } => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "fields.push((\"{f}\".to_string(), \
                         ::serde::Serialize::to_value(&self.{f})));"
                    )
                })
                .collect();
            format!(
                "let mut fields: Vec<(String, ::serde::Value)> = Vec::new();\
                 {pushes} ::serde::Value::Object(fields)"
            )
        }
        Shape::TupleStruct { arity, .. } => match arity {
            1 => "::serde::Serialize::to_value(&self.0)".to_string(),
            _ => {
                let items: Vec<String> = (0..*arity)
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                    .collect();
                format!("::serde::Value::Array(vec![{}])", items.join(","))
            }
        },
        Shape::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => {
                            format!("{name}::{vn} => ::serde::Value::String(\"{vn}\".to_string()),")
                        }
                        VariantKind::Tuple(arity) => {
                            let binds: Vec<String> =
                                (0..*arity).map(|i| format!("__f{i}")).collect();
                            let inner = if *arity == 1 {
                                "::serde::Serialize::to_value(__f0)".to_string()
                            } else {
                                let items: Vec<String> = binds
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                                    .collect();
                                format!("::serde::Value::Array(vec![{}])", items.join(","))
                            };
                            format!(
                                "{name}::{vn}({binds}) => ::serde::Value::Object(vec![\
                                 (\"{vn}\".to_string(), {inner})]),",
                                binds = binds.join(",")
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let binds = fields.join(",");
                            let pushes: String = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "__fields.push((\"{f}\".to_string(), \
                                         ::serde::Serialize::to_value({f})));"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => {{\
                                 let mut __fields: Vec<(String, ::serde::Value)> = Vec::new();\
                                 {pushes}\
                                 ::serde::Value::Object(vec![(\"{vn}\".to_string(), \
                                 ::serde::Value::Object(__fields))]) }}"
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {arms} }}")
        }
    };
    let name = shape_name(&shape);
    format!(
        "impl ::serde::Serialize for {name} {{\
         fn to_value(&self) -> ::serde::Value {{ {body} }} }}"
    )
    .parse()
    .expect("generated Serialize impl must parse")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    let name = shape_name(&shape).to_string();
    let body = match &shape {
        Shape::NamedStruct { fields, .. } => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(__v.get(\"{f}\")\
                         .ok_or_else(|| ::serde::Error::msg(\
                         \"missing field `{f}` in {name}\"))?)?,"
                    )
                })
                .collect();
            format!("Ok({name} {{ {inits} }})")
        }
        Shape::TupleStruct { arity, .. } => match arity {
            1 => format!("Ok({name}(::serde::Deserialize::from_value(__v)?))"),
            _ => {
                let items: Vec<String> = (0..*arity)
                    .map(|i| {
                        format!(
                            "::serde::Deserialize::from_value(__items.get({i})\
                             .ok_or_else(|| ::serde::Error::msg(\"tuple too short\"))?)?"
                        )
                    })
                    .collect();
                format!(
                    "match __v {{ ::serde::Value::Array(__items) => Ok({name}({items})),\
                     _ => Err(::serde::Error::msg(\"expected array for {name}\")) }}",
                    items = items.join(",")
                )
            }
        },
        Shape::Enum { variants, .. } => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("\"{vn}\" => return Ok({name}::{vn}),", vn = v.name))
                .collect();
            let tagged_arms: String = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(arity) => Some(if *arity == 1 {
                            format!(
                                "if let Some(__inner) = __v.get(\"{vn}\") {{\
                                 return Ok({name}::{vn}(\
                                 ::serde::Deserialize::from_value(__inner)?)); }}"
                            )
                        } else {
                            let items: Vec<String> = (0..*arity)
                                .map(|i| {
                                    format!(
                                        "::serde::Deserialize::from_value(__items.get({i})\
                                         .ok_or_else(|| ::serde::Error::msg(\
                                         \"variant tuple too short\"))?)?"
                                    )
                                })
                                .collect();
                            format!(
                                "if let Some(__inner) = __v.get(\"{vn}\") {{\
                                 if let ::serde::Value::Array(__items) = __inner {{\
                                 return Ok({name}::{vn}({items})); }}\
                                 return Err(::serde::Error::msg(\
                                 \"expected array for variant {vn}\")); }}",
                                items = items.join(",")
                            )
                        }),
                        VariantKind::Struct(fields) => {
                            let inits: String = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(\
                                         __inner.get(\"{f}\").ok_or_else(|| \
                                         ::serde::Error::msg(\
                                         \"missing field `{f}` in {name}::{vn}\"))?)?,"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "if let Some(__inner) = __v.get(\"{vn}\") {{\
                                 return Ok({name}::{vn} {{ {inits} }}); }}"
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "if let ::serde::Value::String(__s) = __v {{\
                 match __s.as_str() {{ {unit_arms} _ => {{}} }} }}\
                 {tagged_arms}\
                 Err(::serde::Error::msg(\"no matching variant of {name}\"))"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\
         fn from_value(__v: &::serde::Value) -> Result<Self, ::serde::Error> {{ {body} }} }}"
    )
    .parse()
    .expect("generated Deserialize impl must parse")
}

fn shape_name(shape: &Shape) -> &str {
    match shape {
        Shape::NamedStruct { name, .. } => name,
        Shape::TupleStruct { name, .. } => name,
        Shape::Enum { name, .. } => name,
    }
}

// --- token-level parsing ---------------------------------------------------

fn parse_shape(input: TokenStream) -> Shape {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected type name, found {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derives do not support generic types (deriving `{name}`)");
    }
    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::NamedStruct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct {
                    name,
                    arity: count_top_level_items(g.stream()),
                }
            }
            _ => panic!("cannot derive serde shim traits for unit struct `{name}`"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            _ => panic!("malformed enum `{name}`"),
        },
        other => panic!("cannot derive serde shim traits for `{other}`"),
    }
}

fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` + bracketed attribute group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1; // pub(crate) and friends
                    }
                }
            }
            _ => break,
        }
    }
}

/// Parses `name: Type, ...` field lists (types are skipped, not parsed —
/// the generated code defers to trait impls).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        fields.push(id.to_string());
        i += 1;
        // expect `:` then skip the type up to the next top-level comma
        debug_assert!(
            matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ':'),
            "expected `:` after field name"
        );
        skip_to_comma(&tokens, &mut i);
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        let name = id.to_string();
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                i += 1;
                VariantKind::Struct(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_top_level_items(g.stream());
                i += 1;
                VariantKind::Tuple(arity)
            }
            _ => VariantKind::Unit,
        };
        variants.push(Variant { name, kind });
        skip_to_comma(&tokens, &mut i);
    }
    variants
}

/// Advances past everything up to and including the next top-level comma.
fn skip_to_comma(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    while *i < tokens.len() {
        match &tokens[*i] {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth <= 0 => {
                *i += 1;
                return;
            }
            _ => {}
        }
        *i += 1;
    }
}

/// Counts comma-separated items at the top level of a group.
fn count_top_level_items(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0i32;
    let mut trailing_comma = false;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth <= 0 => {
                count += 1;
                trailing_comma = true;
                continue;
            }
            _ => {}
        }
        trailing_comma = false;
    }
    if trailing_comma {
        count -= 1;
    }
    count
}
