//! Foveated-rendering scenario: the VR/AR application the paper's
//! introduction motivates.
//!
//! Foveated Rendering draws full resolution only where the user looks. This
//! example drives the EyeCoD tracker over a saccade-rich sequence and maps
//! each gaze estimate to a display fovea centre, reporting (a) how often the
//! predicted fovea contains the true fixation point and (b) the rendering
//! workload saved versus full-resolution rendering.
//!
//! Run with:
//! ```text
//! cargo run --release --example foveated_rendering
//! ```

use eyecod::core::tracker::{EyeTracker, TrackerConfig};
use eyecod::core::training::{train_tracker_models, TrainingSetup};
use eyecod::eyedata::render::render_eye;
use eyecod::eyedata::{EyeMotionGenerator, GazeVector};

/// Display parameters of a hypothetical HMD panel.
const DISPLAY_W: f32 = 1920.0;
const DISPLAY_H: f32 = 1080.0;
/// Horizontal field of view in degrees.
const FOV_X_DEG: f32 = 90.0;
/// Foveal radius in degrees (full-resolution disc around the gaze point).
const FOVEA_DEG: f32 = 10.0;

/// Projects a gaze vector to display pixel coordinates (pinhole model).
fn gaze_to_pixel(g: &GazeVector) -> (f32, f32) {
    let fx = DISPLAY_W / (2.0 * (FOV_X_DEG.to_radians() / 2.0).tan());
    let x = DISPLAY_W / 2.0 + fx * g.x / g.z;
    let y = DISPLAY_H / 2.0 + fx * g.y / g.z;
    (x.clamp(0.0, DISPLAY_W), y.clamp(0.0, DISPLAY_H))
}

fn main() {
    println!("EyeCoD foveated-rendering scenario\n");
    let config = TrackerConfig::small();
    println!("training tracker models...");
    let models = train_tracker_models(&TrainingSetup::quick(), &config);
    let mut tracker = EyeTracker::new(config.clone(), models);
    let mut motion = EyeMotionGenerator::with_seed(21);

    let frames = 150;
    let mut hits = 0usize;
    let mut sum_px_err = 0.0f32;
    for i in 0..frames {
        let params = motion.next_frame();
        let sample = render_eye(&params, config.scene_size, 5_000 + i as u64);
        let out = tracker.process_frame(&sample.image, 6_000 + i as u64);
        let err_deg = out.gaze.angular_error_degrees(&sample.gaze);
        if err_deg <= FOVEA_DEG {
            hits += 1;
        }
        let (px, py) = gaze_to_pixel(&out.gaze);
        let (tx, ty) = gaze_to_pixel(&sample.gaze);
        sum_px_err += ((px - tx).powi(2) + (py - ty).powi(2)).sqrt();
    }

    // Fovea coverage: a disc of FOVEA_DEG out of the panel's solid angle.
    let fovea_px_radius = DISPLAY_W / FOV_X_DEG * FOVEA_DEG;
    let fovea_area = std::f32::consts::PI * fovea_px_radius * fovea_px_radius;
    let full_area = DISPLAY_W * DISPLAY_H;
    // peripheral region rendered at quarter resolution
    let saved = 1.0 - (fovea_area + (full_area - fovea_area) * 0.25) / full_area;

    println!("frames:                    {frames}");
    println!(
        "fovea hit rate (≤{FOVEA_DEG}°):    {:.1}%",
        100.0 * hits as f32 / frames as f32
    );
    println!(
        "mean display error:        {:.0} px",
        sum_px_err / frames as f32
    );
    println!("rendering workload saved:  {:.1}%", 100.0 * saved);
    println!("\nhigh-frequency tracking keeps the fovea on target during");
    println!("saccades — the reason the paper targets >240 FPS.");
}
