//! Quickstart: train the proxy models, assemble a FlatCam eye tracker, and
//! track a synthetic eye-motion sequence.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use eyecod::core::tracker::{EyeTracker, TrackerConfig};
use eyecod::core::training::{train_tracker_models, TrainingSetup};
use eyecod::eyedata::EyeMotionGenerator;
use std::time::Instant;

fn main() {
    println!("EyeCoD quickstart — lensless FlatCam eye tracking\n");

    let config = TrackerConfig::small();
    println!(
        "configuration: {}x{} FlatCam scene, {}x{} sensor, seg @ {}x{}, \
         ROI {}x{} refreshed every {} frames",
        config.scene_size,
        config.scene_size,
        config.sensor_size,
        config.sensor_size,
        config.seg_size,
        config.seg_size,
        config.roi.0,
        config.roi.1,
        config.roi_period
    );

    print!("training proxy models on synthetic eyes... ");
    let t0 = Instant::now();
    let models = train_tracker_models(&TrainingSetup::quick(), &config);
    println!("done in {:.1}s", t0.elapsed().as_secs_f32());

    let mut tracker = EyeTracker::new(config, models);
    let mut motion = EyeMotionGenerator::with_seed(7);

    println!("\ntracking 100 frames:");
    let t1 = Instant::now();
    let stats = tracker.run_sequence(&mut motion, 100);
    let elapsed = t1.elapsed().as_secs_f32();
    println!("  frames:         {}", stats.frames);
    println!("  ROI refreshes:  {}", stats.roi_refreshes);
    println!("  mean error:     {:.2}°", stats.mean_error_deg());
    println!("  max error:      {:.2}°", stats.max_error_deg);
    println!(
        "  wall time:      {elapsed:.2}s ({:.1} fps functional sim)",
        100.0 / elapsed
    );
    println!("\n(the functional pipeline demonstrates correctness; the");
    println!(" cycle-level accelerator simulator reports the >240 FPS");
    println!(" hardware throughput — see the accelerator examples/benches)");
}
