//! Accelerator design-space exploration: sweep the EyeCoD accelerator's
//! feature toggles, orchestration modes, lane counts and bandwidth, and
//! print throughput / utilisation / energy for each point.
//!
//! Run with:
//! ```text
//! cargo run --release --example accelerator_design_space
//! ```

use eyecod::accel::config::AcceleratorConfig;
use eyecod::accel::roofline::{model_roofline, ridge_intensity};
use eyecod::accel::schedule::{Orchestration, WindowSimulator};
use eyecod::accel::trace::UtilizationTrace;
use eyecod::accel::workload::EyeCodWorkload;

fn report(label: &str, cfg: AcceleratorConfig) {
    let workload = EyeCodWorkload::paper_default().into_workload();
    let sim = WindowSimulator::new(cfg);
    let r = sim.run_window(&workload);
    println!(
        "{label:<44} {:>8.1} fps   util {:>5.1}%   {:>7.4} mJ/frame",
        r.fps,
        100.0 * r.avg_utilization,
        r.energy_per_frame_mj
    );
}

fn main() {
    println!("EyeCoD accelerator design-space exploration");
    println!("(workload: FlatCam recon + FBNet-C100@96x160 gaze + RITNet@128 seg / 50 frames)\n");

    println!("--- feature ablation (Table 6 axis) ---");
    report(
        "baseline (time-mux, no SWPR, no reuse)",
        AcceleratorConfig::ablation_baseline(),
    );
    report(
        "+ SWPR input buffer",
        AcceleratorConfig {
            swpr_buffer: true,
            ..AcceleratorConfig::ablation_baseline()
        },
    );
    report(
        "+ partial time-multiplexing",
        AcceleratorConfig {
            swpr_buffer: true,
            orchestration: Orchestration::PartialTimeMultiplexed,
            ..AcceleratorConfig::ablation_baseline()
        },
    );
    report(
        "+ depth-wise intra-channel reuse (full)",
        AcceleratorConfig::paper_default(),
    );

    println!("\n--- orchestration modes ---");
    for (name, orch) in [
        ("time-multiplexed", Orchestration::TimeMultiplexed),
        ("concurrent", Orchestration::Concurrent),
        (
            "partial time-multiplexed",
            Orchestration::PartialTimeMultiplexed,
        ),
    ] {
        report(
            name,
            AcceleratorConfig {
                orchestration: orch,
                ..AcceleratorConfig::paper_default()
            },
        );
    }

    println!("\n--- MAC lane scaling ---");
    for lanes in [32usize, 64, 128, 256] {
        report(
            &format!("{lanes} lanes x 8 MACs"),
            AcceleratorConfig {
                mac_lanes: lanes,
                ..AcceleratorConfig::paper_default()
            },
        );
    }

    println!("\n--- activation GB bandwidth ---");
    for words in [16usize, 32, 64, 128] {
        report(
            &format!("{words} act words/cycle"),
            AcceleratorConfig {
                act_words_per_cycle: words,
                ..AcceleratorConfig::paper_default()
            },
        );
    }

    println!("\n--- gaze-model utilisation timeline (Fig. 7 view) ---");
    let cfg = AcceleratorConfig::paper_default();
    let sim = WindowSimulator::new(cfg.clone());
    let workload = EyeCodWorkload::paper_default().into_workload();
    let r = sim.run_window(&workload);
    let trace = UtilizationTrace::from_costs(&r.frame_costs, cfg.clock_mhz);
    for (t, u) in trace.resample(24) {
        let bar = "#".repeat((u * 40.0) as usize);
        println!("  {t:>7.1} us |{bar:<40}| {:.0}%", u * 100.0);
    }
    println!(
        "  mean utilisation {:.0}%, {:.0}% of time below the 80% line \
         (the partial-mode opportunity)",
        100.0 * trace.mean_utilization(),
        100.0 * trace.fraction_below(0.8)
    );

    println!("\n--- roofline (gaze model) ---");
    println!(
        "machine ridge point: {:.1} MACs/word (compute roof {} MACs/cycle)",
        ridge_intensity(&cfg),
        cfg.total_macs()
    );
    let points = model_roofline(&eyecod::models::fbnet::spec(96, 160), &cfg);
    let bw_bound = points.iter().filter(|p| p.bandwidth_bound).count();
    let dw_bound = points
        .iter()
        .filter(|p| p.bandwidth_bound && p.is_depthwise)
        .count();
    println!(
        "{} of {} compute layers are bandwidth-bound ({} of them depth-wise)",
        bw_bound,
        points.len(),
        dw_bound
    );
    for p in points.iter().take(6) {
        println!(
            "  {:<12} intensity {:>6.1}  attainable {:>6.0}  achieved {:>6.0}  {}",
            p.layer,
            p.intensity,
            p.attainable_macs_per_cycle,
            p.achieved_macs_per_cycle,
            if p.is_depthwise { "depth-wise" } else { "" }
        );
    }
}
