//! FlatCam imaging demo: capture an eye through a coded mask, reconstruct
//! it, and inspect mask conditioning, reconstruction quality and the
//! visual-privacy property of the raw measurement.
//!
//! Run with:
//! ```text
//! cargo run --release --example flatcam_imaging
//! ```

use eyecod::eyedata::render::{render_eye, EyeParams};
use eyecod::optics::imaging::FlatCam;
use eyecod::optics::interface::OpticalFirstLayer;
use eyecod::optics::mask::SeparableMask;
use eyecod::optics::mat::Mat;
use eyecod::optics::metrics::psnr;
use eyecod::optics::recon::TikhonovReconstructor;
use eyecod::optics::sensor::SensorModel;

/// Renders a matrix as coarse ASCII art.
fn ascii(m: &Mat, label: &str) {
    println!("{label}:");
    let ramp = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
    let (lo, hi) = m
        .as_slice()
        .iter()
        .fold((f64::MAX, f64::MIN), |(lo, hi), &v| (lo.min(v), hi.max(v)));
    let step_r = (m.rows() / 24).max(1);
    let step_c = (m.cols() / 48).max(1);
    for r in (0..m.rows()).step_by(step_r) {
        let mut line = String::new();
        for c in (0..m.cols()).step_by(step_c) {
            let t = ((m.at(r, c) - lo) / (hi - lo + 1e-12) * 9.0) as usize;
            line.push(ramp[t.min(9)]);
        }
        println!("  {line}");
    }
}

fn main() {
    println!("FlatCam imaging demo\n");
    let scene_size = 64;
    let sensor_size = 96;
    let sample = render_eye(&EyeParams::centered(scene_size), scene_size, 3);
    let scene = Mat::from_tensor(&sample.image);

    let mask = SeparableMask::mls_differential(sensor_size, scene_size, 11);
    let (cl, cr) = mask.condition_numbers();
    println!("mask: {sensor_size}x{sensor_size} sensor observing {scene_size}x{scene_size} scene");
    println!("transfer-matrix condition numbers: {cl:.1} / {cr:.1}\n");

    let cam = FlatCam::new(mask, SensorModel::nir_eye_tracking());
    let y = cam.capture(&scene, 99);

    ascii(&scene, "ground-truth eye");
    ascii(&y, "raw FlatCam measurement (visually private)");

    for eps in [1e-5, 1e-3, 1e-1] {
        let recon = TikhonovReconstructor::new(cam.mask(), eps);
        let xhat = recon.reconstruct(&y);
        println!(
            "reconstruction @ epsilon {eps:>7.0e}: PSNR {:.1} dB",
            psnr(&scene, &xhat)
        );
        if (eps - 1e-3).abs() < 1e-12 {
            ascii(&xhat, "reconstructed eye (adopted epsilon)");
        }
    }

    // the sensing-processing interface: first DNN layer in the optics
    let layer = OpticalFirstLayer::edge_bank(scene_size, scene_size / 4);
    let features = layer.apply(&scene);
    println!(
        "\nsensing-processing interface: {} optical channels at {}x{} \
         (communication reduction {:.1}x, {:.1} MFLOPs saved per frame)",
        layer.num_channels(),
        layer.output_extent(),
        layer.output_extent(),
        layer.communication_reduction(cam.measurement_pixels()),
        layer.flops_saved() as f64 / 1e6
    );
    println!(
        "optical feature magnitudes: intensity {:.2}, dI/dy {:.2}, dI/dx {:.2}, corner {:.2}",
        features
            .channel_plane(0, 0)
            .iter()
            .map(|v| v.abs())
            .sum::<f32>(),
        features
            .channel_plane(0, 1)
            .iter()
            .map(|v| v.abs())
            .sum::<f32>(),
        features
            .channel_plane(0, 2)
            .iter()
            .map(|v| v.abs())
            .sum::<f32>(),
        features
            .channel_plane(0, 3)
            .iter()
            .map(|v| v.abs())
            .sum::<f32>()
    );
}
