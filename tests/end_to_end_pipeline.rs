//! Integration: the full predict-then-focus pipeline from synthetic scene
//! through FlatCam optics, segmentation, ROI and gaze estimation.

use eyecod::core::tracker::{EyeTracker, TrackerConfig};
use eyecod::core::training::{train_tracker_models, TrackerModels, TrainingSetup};
use eyecod::eyedata::render::{render_eye, EyeParams};
use eyecod::eyedata::EyeMotionGenerator;
use std::sync::OnceLock;

fn shared_models() -> &'static (TrackerConfig, TrackerModels) {
    static MODELS: OnceLock<(TrackerConfig, TrackerModels)> = OnceLock::new();
    MODELS.get_or_init(|| {
        let config = TrackerConfig::small();
        let models = train_tracker_models(&TrainingSetup::quick(), &config);
        (config, models)
    })
}

#[test]
fn flatcam_pipeline_tracks_a_sequence() {
    let (config, models) = shared_models();
    let mut tracker = EyeTracker::new(config.clone(), models.clone_models());
    let mut motion = EyeMotionGenerator::with_seed(42);
    let stats = tracker.run_sequence(&mut motion, 40);
    assert_eq!(stats.frames, 40);
    assert_eq!(stats.roi_refreshes, 4); // period 10
    assert!(
        stats.mean_error_deg() < 18.0,
        "mean gaze error {:.1}° too high",
        stats.mean_error_deg()
    );
}

#[test]
fn predicted_roi_overlaps_true_eye_region() {
    let (config, models) = shared_models();
    let mut tracker = EyeTracker::new(config.clone(), models.clone_models());
    let mut params = EyeParams::centered(config.scene_size);
    params.center_x = 0.55;
    params.center_y = 0.45;
    let sample = render_eye(&params, config.scene_size, 9);
    tracker.process_frame(&sample.image, 10);
    let roi = tracker.current_roi();
    // the true pupil (scene coordinates) must be inside the predicted ROI
    let (pcy, pcx) = eyecod::eyedata::labels::class_centroid(
        &sample.labels,
        config.scene_size,
        config.scene_size,
        eyecod::eyedata::SegClass::Pupil,
    )
    .expect("rendered eye has a pupil");
    assert!(
        (roi.y0 as f32..(roi.y0 + roi.h) as f32).contains(&pcy),
        "pupil y {pcy} outside ROI {roi:?}"
    );
    assert!(
        (roi.x0 as f32..(roi.x0 + roi.w) as f32).contains(&pcx),
        "pupil x {pcx} outside ROI {roi:?}"
    );
}

#[test]
fn pipeline_survives_a_blink() {
    // nearly closed eye: segmentation may find little; the tracker must not
    // panic and must produce a unit gaze vector
    let (config, models) = shared_models();
    let mut tracker = EyeTracker::new(config.clone(), models.clone_models());
    let mut params = EyeParams::centered(config.scene_size);
    params.openness = 0.06;
    params.iris_radius = 0.05;
    params.pupil_radius = 0.02;
    let sample = render_eye(&params, config.scene_size, 11);
    let out = tracker.process_frame(&sample.image, 12);
    assert!((out.gaze.norm() - 1.0).abs() < 1e-5);
}

#[test]
fn lens_and_flatcam_pipelines_are_both_functional() {
    // Table 2/3 comparison structure: same pipeline, two acquisitions
    let lens_cfg = TrackerConfig::small_lens();
    let lens_models = train_tracker_models(&TrainingSetup::quick(), &lens_cfg);
    let mut lens_tracker = EyeTracker::new(lens_cfg, lens_models);
    let mut motion = EyeMotionGenerator::with_seed(4);
    let lens_stats = lens_tracker.run_sequence(&mut motion, 20);

    let (config, models) = shared_models();
    let mut flat_tracker = EyeTracker::new(config.clone(), models.clone_models());
    let mut motion2 = EyeMotionGenerator::with_seed(4);
    let flat_stats = flat_tracker.run_sequence(&mut motion2, 20);

    assert!(lens_stats.mean_error_deg() < 18.0);
    assert!(flat_stats.mean_error_deg() < 18.0);
}
