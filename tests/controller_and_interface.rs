//! Integration: the controller instruction streams and the §4.2
//! sensing–processing interface, exercised across crates.

use eyecod::accel::config::AcceleratorConfig;
use eyecod::accel::isa::{compile, Instruction};
use eyecod::accel::workload::EyeCodWorkload;
use eyecod::core::interface::InterfaceSegPipeline;
use eyecod::core::training::TrainingSetup;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn full_window_programs_fit_on_chip() {
    // compile every model of the EyeCoD window workload and check that the
    // combined instruction stream fits the 4 KB instruction SRAM and the
    // 20 KB index SRAM of Table 1
    let cfg = AcceleratorConfig::paper_default();
    let workload = EyeCodWorkload::paper_default().into_workload();
    let mut instr_bytes = 0usize;
    let mut index_words = 0usize;
    let mut programs = 0;
    for model in workload
        .per_frame
        .iter()
        .chain(workload.periodic.iter().map(|(m, _)| m))
    {
        let p = compile(model, &cfg);
        assert!(p.fits(&cfg), "{} program does not fit on chip", p.model);
        instr_bytes += p.encoded_bytes();
        index_words += p.index_words;
        programs += 1;
    }
    assert_eq!(programs, 3, "recon + gaze + segmentation");
    assert!(
        instr_bytes <= cfg.instr_sram_bytes,
        "combined programs ({instr_bytes} B) exceed the {} B instruction SRAM",
        cfg.instr_sram_bytes
    );
    assert!(index_words * 4 <= cfg.index_sram_bytes);
}

#[test]
fn compiled_steps_match_partitioning() {
    let cfg = AcceleratorConfig::paper_default();
    let seg = eyecod::models::ritnet::spec(128);
    let program = compile(&seg, &cfg);
    // every compute step names a real layer
    for i in &program.instructions {
        if let Instruction::ProcessPartition { layer, rounds, .. } = i {
            assert!(
                seg.layers.iter().any(|l| &l.name == layer),
                "unknown layer {layer}"
            );
            assert!(*rounds > 0);
        }
    }
}

#[test]
fn interface_and_reconstruction_paths_both_segment() {
    // train the §4.2 interface path at quick scale and compare its
    // communication volume against the reconstruction path's measurement
    let mut rng = StdRng::seed_from_u64(3);
    let mut pipe = InterfaceSegPipeline::new(48, 24, 8, &mut rng);
    let mut setup = TrainingSetup::quick();
    setup.n_samples = 24;
    setup.seg_epochs = 8;
    pipe.train(&setup);
    let miou = pipe.eval_miou(10);
    assert!(miou > 0.35, "interface path mIOU {miou:.3}");
    // the interface transmits less than the raw 64x64 measurement
    // (4 channels x 24x24 = 2304 bytes vs 4096)
    assert!(pipe.bytes_per_frame() < 64 * 64);
}
