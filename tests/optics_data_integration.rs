//! Integration: optics ↔ synthetic data. FlatCam reconstructions must
//! preserve the image structure the downstream algorithm relies on.

use eyecod::eyedata::render::{render_eye, EyeParams};
use eyecod::optics::imaging::FlatCam;
use eyecod::optics::interface::OpticalFirstLayer;
use eyecod::optics::mask::SeparableMask;
use eyecod::optics::mat::Mat;
use eyecod::optics::metrics::psnr;
use eyecod::optics::recon::TikhonovReconstructor;
use eyecod::optics::sensor::SensorModel;

fn eye_scene(size: usize, yaw_deg: f32) -> (Mat, Vec<u8>) {
    let mut p = EyeParams::centered(size);
    p.yaw = yaw_deg.to_radians();
    let s = render_eye(&p, size, 5);
    (Mat::from_tensor(&s.image), s.labels)
}

/// Darkest-region centroid: a crude pupil detector applied to raw images.
fn dark_centroid(m: &Mat) -> (f64, f64) {
    let mean = m.mean();
    let mut sy = 0.0;
    let mut sx = 0.0;
    let mut n = 0.0f64;
    for r in 0..m.rows() {
        for c in 0..m.cols() {
            if m.at(r, c) < mean * 0.4 {
                sy += r as f64;
                sx += c as f64;
                n += 1.0;
            }
        }
    }
    (sy / n.max(1.0), sx / n.max(1.0))
}

#[test]
fn reconstruction_preserves_pupil_position() {
    let size = 64;
    let mask = SeparableMask::mls_differential(96, size, 5);
    let cam = FlatCam::new(mask, SensorModel::nir_eye_tracking());
    let recon = TikhonovReconstructor::new(cam.mask(), 1e-3);
    for yaw in [-18.0f32, 0.0, 18.0] {
        let (scene, _) = eye_scene(size, yaw);
        let xhat = recon.reconstruct(&cam.capture(&scene, 3));
        let (ty, tx) = dark_centroid(&scene);
        let (ry, rx) = dark_centroid(&xhat);
        assert!(
            (ty - ry).abs() < 4.0 && (tx - rx).abs() < 4.0,
            "yaw {yaw}: pupil moved from ({ty:.1},{tx:.1}) to ({ry:.1},{rx:.1})"
        );
    }
}

#[test]
fn reconstruction_quality_is_stable_across_eyes() {
    let size = 48;
    let mask = SeparableMask::mls_differential(64, size, 9);
    let cam = FlatCam::new(mask, SensorModel::nir_eye_tracking());
    let recon = TikhonovReconstructor::new(cam.mask(), 1e-3);
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    for i in 0..5 {
        let p = EyeParams::random(&mut rng);
        let s = render_eye(&p, size, i);
        let scene = Mat::from_tensor(&s.image);
        let xhat = recon.reconstruct(&cam.capture(&scene, i));
        let q = psnr(&scene, &xhat);
        assert!(q > 20.0, "eye {i}: reconstruction PSNR {q:.1} too low");
    }
}

#[test]
fn raw_measurement_hides_the_eye() {
    // visual privacy: the measurement must not correlate with the scene
    let size = 64;
    let mask = SeparableMask::mls_differential(64, size, 5);
    let cam = FlatCam::new(mask, SensorModel::noiseless());
    let (scene, _) = eye_scene(size, 0.0);
    let y = cam.capture(&scene, 0);
    // normalised cross-correlation between scene and measurement
    let (ms, my) = (scene.mean(), y.mean());
    let mut num = 0.0;
    let mut ds = 0.0;
    let mut dy = 0.0;
    for r in 0..size {
        for c in 0..size {
            let a = scene.at(r, c) - ms;
            let b = y.at(r, c) - my;
            num += a * b;
            ds += a * a;
            dy += b * b;
        }
    }
    let corr = num / (ds.sqrt() * dy.sqrt());
    assert!(
        corr.abs() < 0.2,
        "measurement correlates with scene: {corr:.3}"
    );
}

#[test]
fn optical_first_layer_separates_gaze_directions() {
    // the edge channels respond differently when the pupil moves
    let size = 64;
    let layer = OpticalFirstLayer::edge_bank(size, 16);
    let (left, _) = eye_scene(size, -20.0);
    let (right, _) = eye_scene(size, 20.0);
    let fl = layer.apply(&left);
    let fr = layer.apply(&right);
    let diff = fl.sub(&fr).map(|x| x.abs()).sum();
    assert!(
        diff > 1.0,
        "optical features identical for opposite gazes: {diff}"
    );
}
