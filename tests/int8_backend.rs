//! End-to-end regression for the deployed int8 gaze backend: over one fixed
//! 50-frame synthetic sequence the int8 tracker must stay within half a
//! degree of the f32 tracker's mean gaze error, and the pipeline's stage
//! telemetry (frame/refresh counts, per-stage histogram counts) must be
//! identical — the backend swap changes arithmetic, not pipeline structure.
//!
//! Everything lives in ONE test function: the telemetry registry is global
//! to the test binary, so the two tracked runs must not interleave with
//! other frame-processing tests.

use eyecod::core::tracker::{EyeTracker, GazeBackend, TrackerConfig};
use eyecod::core::training::{train_tracker_models, TrainingSetup};
use eyecod::eyedata::render::render_eye;
use eyecod::eyedata::EyeMotionGenerator;

/// Stage-structure metrics of the last tracked run: pipeline counters and
/// per-stage histogram counts (never latencies — those differ by design).
#[cfg(feature = "telemetry")]
fn stage_counts() -> Vec<(&'static str, u64)> {
    let snap = eyecod::telemetry::global().snapshot();
    let mut v = Vec::new();
    for counter in [
        "tracker/frames",
        "tracker/roi_refreshes",
        "tracker/gaze_degenerate",
    ] {
        v.push((counter, snap.counter(counter).unwrap_or(0)));
    }
    for stage in [
        "tracker/frame_ns",
        "tracker/acquire_ns",
        "tracker/segment_ns",
        "tracker/crop_resize_ns",
        "tracker/gaze_forward_ns",
    ] {
        v.push((stage, snap.histogram(stage).map_or(0, |h| h.count)));
    }
    v
}

#[cfg(not(feature = "telemetry"))]
fn stage_counts() -> Vec<(&'static str, u64)> {
    Vec::new()
}

#[test]
fn int8_backend_tracks_within_half_a_degree_of_f32_with_identical_stage_counts() {
    const FRAMES: usize = 50;

    let mut config = TrackerConfig::small();
    config.gaze_backend = GazeBackend::F32;
    // this is a dense-path differential: the per-frame solve counts and
    // stage-structure pins below assume every frame reconstructs, so the
    // event-driven delta path is pinned off (ambient EYECOD_DELTA=1 runs
    // cover it with their own differential suite)
    config.delta = false;
    let models = train_tracker_models(&TrainingSetup::quick(), &config);

    // one fixed 50-frame synthetic sequence, shared by both backends
    let mut motion = EyeMotionGenerator::with_seed(77);
    let samples: Vec<_> = (0..FRAMES)
        .map(|i| render_eye(&motion.next_frame(), config.scene_size, 1000 + i as u64))
        .collect();

    #[cfg(feature = "telemetry")]
    eyecod::telemetry::set_enabled(true);

    let run = |backend: GazeBackend| {
        #[cfg(feature = "telemetry")]
        eyecod::telemetry::global().reset();
        let mut cfg = config.clone();
        cfg.gaze_backend = backend;
        let mut tracker = EyeTracker::new(cfg, models.clone_models());
        let mut err_sum = 0.0f32;
        for (i, s) in samples.iter().enumerate() {
            let out = tracker.process_frame(&s.image, 2000 + i as u64);
            err_sum += out.gaze.angular_error_degrees(&s.gaze);
        }
        (err_sum / FRAMES as f32, stage_counts(), tracker)
    };

    let (f32_error, f32_counts, f32_tracker) = run(GazeBackend::F32);
    let (int8_error, int8_counts, int8_tracker) = run(GazeBackend::Int8);

    // the f32 path never quantises; the int8 path must have deployed after
    // its warm-up window (8 calibration frames << 50)
    assert!(f32_tracker.quantized_gaze().is_none());
    assert!(
        int8_tracker.quantized_gaze().is_some(),
        "int8 backend never switched over"
    );

    // accuracy criterion: within half a degree of the f32 backend
    let gap = (int8_error - f32_error).abs();
    assert!(
        gap < 0.5,
        "int8 mean error {int8_error:.3}° vs f32 {f32_error:.3}° — gap {gap:.3}° exceeds 0.5°"
    );
    // both backends must actually track (not agree on garbage)
    assert!(
        f32_error < 18.0,
        "f32 backend lost tracking: {f32_error:.1}°"
    );
    assert!(
        int8_error < 18.0,
        "int8 backend lost tracking: {int8_error:.1}°"
    );

    // identical pipeline structure: same stage counters and histogram counts
    assert_eq!(
        f32_counts, int8_counts,
        "stage telemetry diverged between backends"
    );
    #[cfg(feature = "telemetry")]
    {
        let snap = eyecod::telemetry::global().snapshot();
        assert_eq!(
            snap.counter("tracker/int8_calibrations"),
            Some(1),
            "exactly one calibration at the warm-up boundary"
        );
        assert_eq!(
            snap.counter("tracker/int8_frames"),
            Some((FRAMES - 8) as u64),
            "every post-warm-up frame served by the int8 chain"
        );
    }
}
