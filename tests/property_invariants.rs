//! Property-based invariants across the workspace (proptest).

use eyecod::accel::config::AcceleratorConfig;
use eyecod::accel::cost::layer_cost;
use eyecod::accel::storage::ActStore;
use eyecod::models::{LayerKind, LayerSpec};
use eyecod::optics::mat::Mat;
use eyecod::optics::svd::Svd;
use eyecod::tensor::ops;
use eyecod::tensor::quant::QTensor;
use eyecod::tensor::{Shape, Tensor};
use proptest::prelude::*;

fn small_tensor(c: usize, h: usize, w: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-2.0f32..2.0, c * h * w)
        .prop_map(move |v| Tensor::from_vec(Shape::new(1, c, h, w), v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Convolution is linear: conv(a + b) = conv(a) + conv(b).
    #[test]
    fn conv_is_linear(
        a in small_tensor(2, 6, 6),
        b in small_tensor(2, 6, 6),
        wv in proptest::collection::vec(-1.0f32..1.0, 2 * 2 * 3 * 3),
    ) {
        let w = Tensor::from_vec(Shape::new(2, 2, 3, 3), wv);
        let ya = ops::conv2d(&a, &w, None, 1, 1, 1);
        let yb = ops::conv2d(&b, &w, None, 1, 1, 1);
        let yab = ops::conv2d(&a.add(&b), &w, None, 1, 1, 1);
        prop_assert!(yab.sub(&ya.add(&yb)).max_abs() < 1e-3);
    }

    /// Quantisation round-trip error is bounded by half a step.
    #[test]
    fn quantisation_error_is_bounded(t in small_tensor(1, 4, 4)) {
        let q = QTensor::quantize(&t);
        let err = t.sub(&q.dequantize()).max_abs();
        prop_assert!(err <= q.scale() * 0.5 + 1e-6);
    }

    /// SVD reconstructs arbitrary tall matrices.
    #[test]
    fn svd_reconstructs(vals in proptest::collection::vec(-1.0f64..1.0, 12 * 6)) {
        let m = Mat::from_fn(12, 6, |r, c| vals[r * 6 + c]);
        let svd = Svd::compute(&m);
        prop_assert!(svd.reconstruct().sub(&m).max_abs() < 1e-9);
        // singular values sorted descending and non-negative
        for w in svd.s.windows(2) {
            prop_assert!(w[0] >= w[1] && w[1] >= 0.0);
        }
    }

    /// Channel concat and split are inverses.
    #[test]
    fn concat_split_roundtrip(a in small_tensor(3, 4, 4), b in small_tensor(5, 4, 4)) {
        let cat = ops::concat_channels(&[&a, &b]);
        let parts = ops::split_channels(&cat, &[3, 5]);
        prop_assert!(parts[0] == a && parts[1] == b);
    }

    /// The banked activation store is lossless for any tensor.
    #[test]
    fn act_store_roundtrip(t in small_tensor(24, 4, 4)) {
        let store = ActStore::from_tensor(&t, 4);
        prop_assert!(store.to_tensor() == t);
        prop_assert!(store.parallel_fetch_conflict_free());
    }

    /// More MAC lanes never increase a layer's cycle count, and enabling
    /// intra-channel reuse never slows a depth-wise layer.
    #[test]
    fn simulator_monotonicity(c in 4usize..64, hw in 4usize..32, k in prop_oneof![Just(3usize), Just(5usize)]) {
        let spec = LayerSpec {
            name: "dw".into(),
            kind: LayerKind::Depthwise { k, stride: 1 },
            c_in: c,
            c_out: c,
            h_in: hw,
            w_in: hw,
        };
        let mut cfg = AcceleratorConfig::paper_default();
        let mut prev = u64::MAX;
        for lanes in [8usize, 32, 128] {
            let cost = layer_cost(&spec, lanes, &cfg);
            prop_assert!(cost.cycles <= prev);
            prev = cost.cycles;
        }
        let with = layer_cost(&spec, 128, &cfg);
        cfg.intra_channel_reuse = false;
        let without = layer_cost(&spec, 128, &cfg);
        prop_assert!(with.cycles <= without.cycles);
        prop_assert!(with.act_read_words <= without.act_read_words);
    }

    /// Energy counts are non-negative and additive in scaling.
    #[test]
    fn energy_scaling(times in 1u64..16) {
        let spec = LayerSpec {
            name: "pw".into(),
            kind: LayerKind::Pointwise { stride: 1 },
            c_in: 16,
            c_out: 32,
            h_in: 8,
            w_in: 8,
        };
        let cfg = AcceleratorConfig::paper_default();
        let counts = layer_cost(&spec, 128, &cfg).energy_counts();
        let scaled = counts.scaled(times);
        prop_assert_eq!(scaled.macs, counts.macs * times);
        let m = eyecod::accel::energy::EnergyModel::default();
        let e1 = counts.energy_joules(&m, 370.0);
        let et = scaled.energy_joules(&m, 370.0);
        prop_assert!((et - times as f64 * e1).abs() <= 1e-9 * et.max(1e-30));
    }

    /// Rendered eyes always carry valid labels and a unit gaze vector.
    #[test]
    fn renderer_invariants(seed in 0u64..500) {
        use eyecod::eyedata::render::{render_eye, EyeParams};
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let p = EyeParams::random(&mut rng);
        let s = render_eye(&p, 24, seed);
        prop_assert!(s.labels.iter().all(|&l| l < 4));
        prop_assert!((s.gaze.norm() - 1.0).abs() < 1e-5);
        prop_assert!(s.image.min() >= 0.0 && s.image.max() <= 1.0);
    }
}
