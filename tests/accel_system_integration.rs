//! Integration: model specs → accelerator simulator → platform comparison.
//! Verifies the cross-crate claims behind Table 6 and Fig. 14.

use eyecod::accel::config::AcceleratorConfig;
use eyecod::accel::schedule::{Orchestration, WindowSimulator};
use eyecod::accel::storage::{partitioned_activation_bytes, peak_activation_bytes};
use eyecod::accel::trace::UtilizationTrace;
use eyecod::accel::workload::EyeCodWorkload;
use eyecod::platforms::system::{compare_all, row};

/// The Table 6 configuration ladder.
fn ladder() -> Vec<(&'static str, bool, AcceleratorConfig)> {
    // (label, predict_then_focus, config)
    let base = AcceleratorConfig::ablation_baseline();
    vec![
        ("lens-based", false, base.clone()),
        ("+P.F.", true, base.clone()),
        (
            "+Input.",
            true,
            AcceleratorConfig {
                swpr_buffer: true,
                ..base.clone()
            },
        ),
        (
            "+Partial.",
            true,
            AcceleratorConfig {
                swpr_buffer: true,
                orchestration: Orchestration::PartialTimeMultiplexed,
                ..base.clone()
            },
        ),
        ("+Depth.", true, AcceleratorConfig::paper_default()),
    ]
}

#[test]
fn table6_ladder_improves_monotonically() {
    let mut prev = 0.0;
    for (label, pf, cfg) in ladder() {
        let workload = if pf {
            EyeCodWorkload::paper_default().into_workload()
        } else {
            EyeCodWorkload::lens_based().into_workload()
        };
        let fps = WindowSimulator::new(cfg).run_window(&workload).fps;
        assert!(
            fps > prev,
            "{label}: fps {fps:.1} did not improve on {prev:.1}"
        );
        prev = fps;
    }
}

#[test]
fn table6_total_speedup_is_papers_magnitude() {
    // paper: 4.00x end to end (we accept a generous band: the shape claim)
    let rows = ladder();
    let (_, _, base_cfg) = &rows[0];
    let (_, _, full_cfg) = &rows[4];
    let base = WindowSimulator::new(base_cfg.clone())
        .run_window(&EyeCodWorkload::lens_based().into_workload());
    let full = WindowSimulator::new(full_cfg.clone())
        .run_window(&EyeCodWorkload::paper_default().into_workload());
    let speedup = full.fps / base.fps;
    assert!(
        (2.5..8.0).contains(&speedup),
        "end-to-end speedup {speedup:.2}x out of band"
    );
    // energy efficiency moves with throughput (Table 6 reports both equal)
    let eff = base.energy_per_frame_mj / full.energy_per_frame_mj;
    assert!(eff > 1.5, "energy-per-frame improvement {eff:.2}x");
}

#[test]
fn gaze_trace_dips_at_depthwise_layers() {
    // Fig. 7: utilisation running the gaze model dips below 80% on
    // depth-wise/small layers and partial mode exploits that window
    let cfg = AcceleratorConfig::paper_default();
    let sim = WindowSimulator::new(cfg.clone());
    let r = sim.run_window(&EyeCodWorkload::paper_default().into_workload());
    let trace = UtilizationTrace::from_costs(&r.frame_costs, cfg.clock_mhz);
    let dw_low = trace
        .segments()
        .iter()
        .filter(|s| s.is_depthwise)
        .any(|s| s.utilization < 0.8);
    assert!(dw_low, "no depth-wise segment below 80% utilisation");
    assert!(trace.fraction_below(0.8) > 0.05);
    assert!(trace.mean_utilization() > 0.5);
}

#[test]
fn activation_partition_fits_the_act_gbs() {
    // Challenge #III numbers at the paper's deployed resolutions
    let seg = eyecod::models::ritnet::spec(128);
    let gaze = eyecod::models::fbnet::spec(96, 160);
    let unpartitioned = peak_activation_bytes(&seg, 1) + peak_activation_bytes(&gaze, 1);
    let partitioned =
        partitioned_activation_bytes(&seg, 4, 1) + partitioned_activation_bytes(&gaze, 4, 1);
    let cfg = AcceleratorConfig::paper_default();
    let act_total = (cfg.act_gb_bytes * cfg.act_gb_count) as u64;
    assert!(partitioned < act_total, "partitioned activations must fit");
    let ratio = partitioned as f64 / unpartitioned as f64;
    assert!((0.2..0.6).contains(&ratio), "partition ratio {ratio:.2}");
}

#[test]
fn figure14_is_internally_consistent() {
    let rows = compare_all();
    assert_eq!(rows.len(), 6);
    let eyecod = row(&rows, "EyeCoD");
    // real-time bar and dominance
    assert!(eyecod.fps > 240.0);
    for r in &rows {
        assert!(r.fps > 0.0 && r.frames_per_joule > 0.0);
        assert!(r.norm_energy_eff <= 1.0 + 1e-12);
    }
    // normalised efficiencies are ordered like raw efficiencies
    let mut sorted = rows.clone();
    sorted.sort_by(|a, b| a.frames_per_joule.partial_cmp(&b.frames_per_joule).unwrap());
    for w in sorted.windows(2) {
        assert!(w[0].norm_energy_eff <= w[1].norm_energy_eff + 1e-12);
    }
}

#[test]
fn simulator_energy_counts_follow_workload_scale() {
    // doubling the window doubles dynamic counts
    let cfg = AcceleratorConfig::paper_default();
    let sim = WindowSimulator::new(cfg);
    let mut w = EyeCodWorkload::paper_default().into_workload();
    let r1 = sim.run_window(&w);
    w.window *= 2;
    let r2 = sim.run_window(&w);
    assert_eq!(r2.counts.macs, 2 * r1.counts.macs);
    assert!(
        (r2.fps / r1.fps - 1.0).abs() < 0.05,
        "fps should be window-invariant"
    );
}
