//! Fault-tolerance conformance suite: the tracker under a deterministic
//! fault-injection plan must degrade gracefully — never panic, keep the
//! vast majority of frames usable, replay byte-identically from a seed
//! (sequentially and in parallel), and recover identically whether
//! telemetry is recording or not.
//!
//! The acceptance scenario (ISSUE 4): a 60-frame sequence under the
//! `heavy` preset (≥10 % frame drop, ≥5 % dead pixels, injected gaze NaNs
//! and one worker panic) completes with zero panics, ≥90 % of frames
//! graded `Ok`/`Degraded`, and recovery counters that are identical
//! across two runs.

use eyecod::core::metrics::TrackingStats;
use eyecod::core::tracker::{EyeTracker, GazeBackend, TrackedFrame, TrackerConfig};
use eyecod::core::training::{train_tracker_models, TrackerModels, TrainingSetup};
use eyecod::eyedata::EyeMotionGenerator;
use eyecod::faults::{FaultPlan, RecoveryPolicy};
use std::sync::OnceLock;

fn shared_models() -> &'static (TrackerConfig, TrackerModels) {
    static MODELS: OnceLock<(TrackerConfig, TrackerModels)> = OnceLock::new();
    MODELS.get_or_init(|| {
        let mut config = TrackerConfig::small();
        // pin the backend so the golden trace is the same trace in every
        // CI job; the chaos matrix sweeps all three backends explicitly
        config.gaze_backend = GazeBackend::F32;
        let models = train_tracker_models(&TrainingSetup::quick(), &config);
        (config, models)
    })
}

fn run_traced(plan: &FaultPlan, seed: u64, frames: usize) -> (TrackingStats, Vec<TrackedFrame>) {
    let (config, models) = shared_models();
    let mut tracker = EyeTracker::new(config.clone(), models.clone_models())
        .with_faults(plan.clone())
        .with_recovery(RecoveryPolicy::default());
    tracker.run_sequence_traced(&mut EyeMotionGenerator::with_seed(seed), frames)
}

fn quality_codes(trace: &[TrackedFrame]) -> String {
    trace.iter().map(|f| f.quality.code()).collect()
}

#[test]
fn golden_trace_replays_byte_identically_under_the_heavy_plan() {
    const FRAMES: usize = 60;
    let plan = FaultPlan::heavy(0xEC0D);

    let (stats_a, trace_a) = run_traced(&plan, 11, FRAMES);
    let (stats_b, trace_b) = run_traced(&plan, 11, FRAMES);

    // byte-identical replay: grades, per-frame accounting, aggregate stats
    assert_eq!(stats_a, stats_b, "stats must replay identically");
    assert_eq!(
        quality_codes(&trace_a),
        quality_codes(&trace_b),
        "quality trace must replay identically"
    );
    for (a, b) in trace_a.iter().zip(&trace_b) {
        assert_eq!(a.faults, b.faults, "frame {} accounting differs", a.frame);
        assert_eq!(a.gaze, b.gaze, "frame {} gaze differs", a.frame);
    }

    // acceptance criterion: the sequence completes with zero panics and
    // at least 90 % of frames graded Ok or Degraded
    assert_eq!(stats_a.frames, FRAMES);
    let usable = stats_a.frames_ok + stats_a.frames_degraded;
    assert!(
        usable * 10 >= FRAMES * 9,
        "only {usable}/{FRAMES} frames usable under the heavy plan"
    );
    // the plan must actually bite, and recovery must actually engage
    assert!(stats_a.faults.injected > 0, "heavy plan injected nothing");
    assert!(stats_a.faults.recovered > 0, "recovery never engaged");
    // a different plan seed draws a different schedule — the trace is a
    // function of the seed, not an artifact of the pipeline
    let (_, other) = run_traced(&FaultPlan::heavy(0xBEEF), 11, FRAMES);
    assert_ne!(quality_codes(&trace_a), quality_codes(&other));
}

#[test]
fn parallel_and_sequential_recovery_counters_are_identical() {
    let (config, models) = shared_models();
    let plan = FaultPlan::heavy(0xEC0D); // includes one worker panic (job 1)
    let policy = RecoveryPolicy::default();
    let seeds = [11u64, 12, 13, 14];
    const FRAMES: usize = 20;

    let parallel =
        EyeTracker::run_sequences_parallel_with(config, models, &seeds, FRAMES, &plan, &policy);
    assert_eq!(parallel.len(), seeds.len());
    for (&seed, stats) in seeds.iter().zip(&parallel) {
        let mut fresh = EyeTracker::new(config.clone(), models.clone_models())
            .with_faults(plan.clone())
            .with_recovery(policy);
        let sequential = fresh.run_sequence(&mut EyeMotionGenerator::with_seed(seed), FRAMES);
        assert_eq!(
            stats, &sequential,
            "seed {seed}: parallel run (with injected worker panic) must \
             be byte-identical to the sequential run"
        );
    }
}

#[test]
fn recovery_is_identical_with_telemetry_muted() {
    // recovery decisions must not depend on observability: the exact same
    // trace comes out whether the telemetry runtime switch is on or off
    let plan = FaultPlan::heavy(0x7E1E);
    let was_enabled = eyecod::telemetry::enabled();
    eyecod::telemetry::set_enabled(false);
    let (stats_muted, trace_muted) = run_traced(&plan, 9, 30);
    eyecod::telemetry::set_enabled(true);
    let (stats_loud, trace_loud) = run_traced(&plan, 9, 30);
    eyecod::telemetry::set_enabled(was_enabled);
    assert_eq!(stats_muted, stats_loud);
    assert_eq!(quality_codes(&trace_muted), quality_codes(&trace_loud));
}

/// The chaos matrix axis: dead pixels, frame drops and gaze NaNs scaled
/// together by `level` (0 = clean … 3 = 9 % dead pixels, 12 % drops).
fn chaos_plan(level: u32) -> FaultPlan {
    let mut p = FaultPlan::none();
    p.seed = 0xC0FFEE;
    p.sensor.dead_pixel_ppm = 30_000 * level;
    p.sensor.frame_drop_ppm = 40_000 * level;
    p.stage.gaze_nan_ppm = 30_000 * level;
    p
}

#[test]
fn chaos_matrix_degrades_gracefully_on_all_backends() {
    const FRAMES: usize = 30;
    // adjacent severity levels draw different fault schedules, so a
    // 30-frame sample carries real variance; the trend across the whole
    // sweep is what must hold
    const SLACK_DEG: f32 = 6.0;
    let (config, models) = shared_models();

    for backend in [GazeBackend::F32, GazeBackend::Int8, GazeBackend::Latent] {
        let mut errors = Vec::new();
        for level in 0..4u32 {
            let mut cfg = config.clone();
            cfg.gaze_backend = backend;
            let mut tracker = EyeTracker::new(cfg, models.clone_models())
                .with_faults(chaos_plan(level))
                .with_recovery(RecoveryPolicy::default());
            let stats = tracker.run_sequence(&mut EyeMotionGenerator::with_seed(31), FRAMES);
            // never panics, never emits garbage
            assert_eq!(stats.frames, FRAMES);
            assert!(
                stats.mean_error_deg().is_finite() && stats.mean_error_deg() < 45.0,
                "{backend:?} level {level}: error {:.1}° is garbage",
                stats.mean_error_deg()
            );
            if backend == GazeBackend::Int8 {
                // the int8 warm-up calibration must survive faulted
                // calibration frames and still deploy the quantised net
                assert!(
                    tracker.quantized_gaze().is_some(),
                    "int8 never calibrated at chaos level {level}"
                );
            }
            errors.push(stats.mean_error_deg());
        }
        // mean gaze error degrades monotonically with severity, within a
        // small slack for the noise floor of a 30-frame sample
        for w in errors.windows(2) {
            assert!(
                w[1] + SLACK_DEG >= w[0],
                "{backend:?}: error improved with more faults: {errors:?}"
            );
        }
        assert!(
            *errors.last().unwrap() > errors[0] + 1.0,
            "{backend:?}: heaviest chaos level does not degrade tracking: {errors:?}"
        );
    }
}

/// Latent staleness edge cases: under a drop-heavy plan the latent fast
/// path falls back to its **last-good measurement** the way the recon path
/// falls back to its last-good image — same recovery skeleton, same
/// counters — so the per-frame fault accounting and the [`FrameQuality`]
/// grades must be *identical* to the f32 recon path under the same plan
/// and seed (the fault schedule is a function of the plan seed and frame
/// index, never of the backend).
#[test]
fn latent_fallbacks_grade_identically_to_the_recon_path() {
    const FRAMES: usize = 40;
    let (config, models) = shared_models();
    // drops + duplicates + dead pixels: exercises the Missing, Duplicate
    // and retry arms of the latent sense stage (no gaze NaNs — the nets
    // differ, so post-forward faults could legitimately grade differently)
    let mut plan = FaultPlan::none();
    plan.seed = 0x57A1E;
    plan.sensor.frame_drop_ppm = 150_000;
    plan.sensor.frame_duplicate_ppm = 80_000;
    plan.sensor.dead_pixel_ppm = 60_000;

    let run = |backend: GazeBackend| {
        let mut cfg = config.clone();
        cfg.gaze_backend = backend;
        let mut tracker = EyeTracker::new(cfg, models.clone_models())
            .with_faults(plan.clone())
            .with_recovery(RecoveryPolicy::default());
        tracker.run_sequence_traced(&mut EyeMotionGenerator::with_seed(23), FRAMES)
    };
    let (f32_stats, f32_trace) = run(GazeBackend::F32);
    let (lat_stats, lat_trace) = run(GazeBackend::Latent);

    // the plan must actually bite, and the last-good fallback must engage
    assert!(f32_stats.faults.injected > 0, "plan injected nothing");
    assert!(f32_stats.faults.recovered > 0, "fallbacks never engaged");
    assert_eq!(
        f32_stats.faults, lat_stats.faults,
        "latent fault accounting diverged from the recon path"
    );
    assert_eq!(
        quality_codes(&f32_trace),
        quality_codes(&lat_trace),
        "latent FrameQuality grades diverged from the recon path"
    );
    for (a, b) in f32_trace.iter().zip(&lat_trace) {
        assert_eq!(
            a.faults, b.faults,
            "frame {}: per-frame accounting diverged",
            a.frame
        );
    }
}

/// A degenerate (injected-NaN) gaze out of the latent net must be replaced
/// by the last-good gaze and flagged — never emitted. Exercises the
/// post-forward recovery arm on the fast path, where the gaze came from
/// the latent net rather than the recon-path net.
#[test]
fn latent_degenerate_gaze_falls_back_to_last_good() {
    const FRAMES: usize = 40;
    let (config, models) = shared_models();
    let mut cfg = config.clone();
    cfg.gaze_backend = GazeBackend::Latent;
    let mut plan = FaultPlan::none();
    plan.seed = 0x1A7E;
    plan.stage.gaze_nan_ppm = 200_000;
    let mut tracker = EyeTracker::new(cfg, models.clone_models())
        .with_faults(plan)
        .with_recovery(RecoveryPolicy::default());
    let (stats, trace) = tracker.run_sequence_traced(&mut EyeMotionGenerator::with_seed(5), FRAMES);
    assert_eq!(stats.frames, FRAMES);
    let degenerate = trace.iter().filter(|f| f.gaze_degenerate).count();
    assert!(degenerate > 0, "the NaN plan never bit");
    assert!(
        degenerate < FRAMES,
        "every frame degenerate — nothing left to fall back to"
    );
    for f in &trace {
        assert!(
            f.gaze.x.is_finite() && f.gaze.y.is_finite() && f.gaze.z.is_finite(),
            "frame {}: a degenerate latent gaze leaked to the output",
            f.frame
        );
    }
}

#[test]
fn tracker_construction_honours_the_env_plan() {
    let (config, models) = shared_models();
    let tracker = EyeTracker::new(config.clone(), models.clone_models());
    let expected = match std::env::var("EYECOD_FAULT_PLAN") {
        Err(_) => FaultPlan::none(),
        Ok(v) => FaultPlan::parse(&v).expect("driver sets a valid plan"),
    };
    assert_eq!(*tracker.fault_plan(), expected);
}

#[test]
fn heavy_plan_json_round_trips_through_the_env_syntax() {
    // a plan exported as JSON and fed back through the EYECOD_FAULT_PLAN
    // parser reproduces the exact schedule — the replay-from-a-bug-report
    // workflow
    let plan = FaultPlan::heavy(42);
    let json = plan.to_json();
    let back = FaultPlan::parse(&json).expect("JSON plan must parse");
    assert_eq!(back, plan);
    assert_eq!(back.schedule(60), plan.schedule(60));
}
