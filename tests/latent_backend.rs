//! End-to-end regression for the recon-free latent gaze backend: over one
//! fixed 50-frame synthetic sequence the latent tracker must (a) stay
//! within a bounded mean angular divergence of the full-recon f32 tracker,
//! (b) reproduce the f32 tracker's outputs **bit-identically on ROI-refresh
//! frames** (those frames run the full recon + segmentation pipeline in
//! both backends), (c) keep the pipeline's stage-histogram *structure*
//! identical (same counters, same per-stage sample counts — the latent
//! path swaps what runs inside the crop stage, not which stages run), and
//! (d) perform **zero reconstruction solves on steady-state frames** —
//! `optics/recon_solves` must equal the refresh-frame count exactly.
//!
//! On the divergence bound: the latent net regresses gaze from a bilinear
//! down-projection of the raw FlatCam measurement — a *different function
//! class* than the recon-path net (which sees a Tikhonov-reconstructed ROI
//! crop), trained on the same corpus by the same quick setup. The two
//! paths agree on where the eye points, not on each float: with the quick
//! training budget the observed mean divergence is a few degrees, and the
//! contract bound of 15° asserts "both paths track the same signal"
//! while leaving headroom for training-noise variation across seeds. The
//! truth-error bound (25°) matches the latent unit tests and is looser
//! than the f32 bound (18°) because the projection discards information
//! the reconstruction retains — the fast path trades accuracy for skipped
//! stages, exactly the reconstruct-then-skip bargain of FlatTrack
//! (arXiv 2501.15450).
//!
//! The tracked runs live in ONE test function: the telemetry registry is
//! global to the test binary, so the two runs must not interleave with
//! other frame-processing tests. The batch==per-item leg is net-level
//! (no tracker frames, no telemetry) and may run concurrently.

use eyecod::core::tracker::{EyeTracker, GazeBackend, TrackerConfig};
use eyecod::core::training::{train_tracker_models, TrainingSetup};
use eyecod::eyedata::render::render_eye;
use eyecod::eyedata::EyeMotionGenerator;
use eyecod::models::infer::GazeInferWorkspace;
use eyecod::models::latent::LatentGazeNet;
use eyecod::models::proxy::GazeFamily;
use eyecod::tensor::{Shape, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Stage-structure metrics of the last tracked run: pipeline counters and
/// per-stage histogram counts (never latencies — those differ by design).
#[cfg(feature = "telemetry")]
fn stage_counts() -> Vec<(&'static str, u64)> {
    let snap = eyecod::telemetry::global().snapshot();
    let mut v = Vec::new();
    for counter in [
        "tracker/frames",
        "tracker/roi_refreshes",
        "tracker/gaze_degenerate",
    ] {
        v.push((counter, snap.counter(counter).unwrap_or(0)));
    }
    for stage in [
        "tracker/frame_ns",
        "tracker/acquire_ns",
        "tracker/segment_ns",
        "tracker/crop_resize_ns",
        "tracker/gaze_forward_ns",
    ] {
        v.push((stage, snap.histogram(stage).map_or(0, |h| h.count)));
    }
    v
}

#[cfg(not(feature = "telemetry"))]
fn stage_counts() -> Vec<(&'static str, u64)> {
    Vec::new()
}

#[test]
fn latent_backend_tracks_the_f32_path_with_identical_structure_and_no_steady_solves() {
    const FRAMES: usize = 50;

    let mut config = TrackerConfig::small();
    config.gaze_backend = GazeBackend::F32;
    // this is a dense-path differential: the per-frame solve counts and
    // stage-structure pins below assume every frame reconstructs, so the
    // event-driven delta path is pinned off (ambient EYECOD_DELTA=1 runs
    // cover it with their own differential suite)
    config.delta = false;
    let models = train_tracker_models(&TrainingSetup::quick(), &config);

    // refresh frames by the tracker's internal counter (frame 0 is due)
    let refresh_frames: Vec<usize> = (0..FRAMES).filter(|i| i % config.roi_period == 0).collect();

    // one fixed 50-frame synthetic sequence, shared by both backends
    let mut motion = EyeMotionGenerator::with_seed(77);
    let samples: Vec<_> = (0..FRAMES)
        .map(|i| render_eye(&motion.next_frame(), config.scene_size, 1000 + i as u64))
        .collect();

    #[cfg(feature = "telemetry")]
    eyecod::telemetry::set_enabled(true);

    #[allow(clippy::type_complexity)]
    let run = |backend: GazeBackend| -> (
        Vec<([u32; 3], bool)>,
        f32,
        Vec<(&'static str, u64)>,
        u64,
        EyeTracker,
    ) {
        #[cfg(feature = "telemetry")]
        eyecod::telemetry::global().reset();
        let mut cfg = config.clone();
        cfg.gaze_backend = backend;
        let mut tracker = EyeTracker::new(cfg, models.clone_models());
        let mut trace = Vec::with_capacity(FRAMES);
        let mut err_sum = 0.0f32;
        for (i, s) in samples.iter().enumerate() {
            let out = tracker.process_frame(&s.image, 2000 + i as u64);
            err_sum += out.gaze.angular_error_degrees(&s.gaze);
            trace.push((
                [
                    out.gaze.x.to_bits(),
                    out.gaze.y.to_bits(),
                    out.gaze.z.to_bits(),
                ],
                out.roi_refreshed,
            ));
        }
        #[cfg(feature = "telemetry")]
        let solves = eyecod::telemetry::global()
            .snapshot()
            .counter("optics/recon_solves")
            .unwrap_or(0);
        #[cfg(not(feature = "telemetry"))]
        let solves = 0u64;
        (
            trace,
            err_sum / FRAMES as f32,
            stage_counts(),
            solves,
            tracker,
        )
    };

    let (f32_trace, f32_error, f32_counts, f32_solves, f32_tracker) = run(GazeBackend::F32);
    let (lat_trace, lat_error, lat_counts, lat_solves, lat_tracker) = run(GazeBackend::Latent);

    // neither path ever quantises — latent is an f32 fast path, not int8
    assert!(f32_tracker.quantized_gaze().is_none());
    assert!(
        lat_tracker.quantized_gaze().is_none(),
        "latent backend must never engage the int8 chain"
    );

    // (a) bounded mean angular divergence between the two paths' outputs
    let mut div_sum = 0.0f32;
    for ((fb, _), (lb, _)) in f32_trace.iter().zip(&lat_trace) {
        let fg = eyecod::eyedata::GazeVector {
            x: f32::from_bits(fb[0]),
            y: f32::from_bits(fb[1]),
            z: f32::from_bits(fb[2]),
        };
        let lg = eyecod::eyedata::GazeVector {
            x: f32::from_bits(lb[0]),
            y: f32::from_bits(lb[1]),
            z: f32::from_bits(lb[2]),
        };
        div_sum += fg.angular_error_degrees(&lg);
    }
    let mean_divergence = div_sum / FRAMES as f32;
    assert!(
        mean_divergence < 15.0,
        "latent path diverged {mean_divergence:.2}° (mean) from the f32 recon path — bound is 15°"
    );

    // both paths must actually track truth (not merely agree on garbage)
    assert!(
        f32_error < 18.0,
        "f32 backend lost tracking: {f32_error:.1}°"
    );
    assert!(
        lat_error < 25.0,
        "latent backend lost tracking: {lat_error:.1}°"
    );

    // (b) refresh frames run the identical full-recon pipeline in both
    // backends — outputs must match to the last bit
    for &i in &refresh_frames {
        assert!(f32_trace[i].1, "frame {i} should have refreshed the ROI");
        assert_eq!(
            f32_trace[i], lat_trace[i],
            "refresh frame {i}: latent output not bit-identical to f32"
        );
    }

    // (c) identical pipeline structure: same stage counters and histogram
    // sample counts — the latent crop stage projects instead of cropping,
    // but records into the same histogram slot
    assert_eq!(
        f32_counts, lat_counts,
        "stage telemetry structure diverged between backends"
    );

    // (d) the acceptance pin: steady-state latent frames perform zero
    // reconstruction solves — solves happen on refresh frames only
    #[cfg(feature = "telemetry")]
    {
        assert_eq!(
            f32_solves, FRAMES as u64,
            "the recon path solves once per frame"
        );
        assert_eq!(
            lat_solves,
            refresh_frames.len() as u64,
            "latent path must reconstruct on refresh frames ONLY"
        );
        let snap = eyecod::telemetry::global().snapshot();
        assert_eq!(
            snap.counter("tracker/latent_frames"),
            Some((FRAMES - refresh_frames.len()) as u64),
            "every non-refresh frame served by the latent net"
        );
    }
    #[cfg(not(feature = "telemetry"))]
    let _ = (f32_solves, lat_solves);
}

/// The latent net's batched forward must equal its per-item forward to the
/// last bit — the serve layer batches latent rows across sessions, and that
/// execution-strategy choice must be invisible (the same contract the f32
/// and int8 nets carry).
#[test]
fn latent_batch_forward_matches_per_item_bitwise() {
    const N: usize = 7;
    let (in_h, in_w) = (24, 32);
    let mut rng = StdRng::seed_from_u64(41);
    let mut net = LatentGazeNet::new(GazeFamily::MobileNetLike, in_h, in_w, &mut rng);
    net.set_normalization(0.37, 2.1);

    // synthetic raw measurements at FlatCam sensor extent
    let meas: Vec<Tensor> = (0..N)
        .map(|_| {
            Tensor::from_fn(Shape::new(1, 1, 64, 64), |_, _, _, _| {
                rng.gen_range(0.0f32..1.0f32)
            })
        })
        .collect();

    // per-item: project then forward one at a time
    let mut ws = GazeInferWorkspace::new();
    let mut item_out = Vec::new();
    let mut projected = Vec::new();
    for m in &meas {
        let mut p = Tensor::zeros(Shape::new(1, 1, in_h, in_w));
        net.project_into(m, &mut p);
        let mut out = Tensor::zeros(Shape::new(1, 3, 1, 1));
        net.forward_infer(&p, &mut ws, &mut out);
        item_out.push([out.at(0, 0, 0, 0), out.at(0, 1, 0, 0), out.at(0, 2, 0, 0)]);
        projected.push(p);
    }

    // batched: the same projections gathered into one (N,1,h,w) forward
    let batch = Tensor::from_fn(Shape::new(N, 1, in_h, in_w), |n, _, h, w| {
        projected[n].at(0, 0, h, w)
    });
    let mut batch_out = Tensor::zeros(Shape::new(N, 3, 1, 1));
    net.forward_infer(&batch, &mut ws, &mut batch_out);

    for (n, item) in item_out.iter().enumerate() {
        for (c, v) in item.iter().enumerate() {
            assert_eq!(
                batch_out.at(n, c, 0, 0).to_bits(),
                v.to_bits(),
                "batch row {n} channel {c} diverged from per-item forward"
            );
        }
    }
}
