//! End-to-end regression for the event-driven sparse acquisition path and
//! its motion gate.
//!
//! The delta pipeline replaces dense re-sensing on steady-state frames
//! with a diff against the last fully-sensed scene: changed columns are
//! folded into the cached measurement as a rank-`k` update and the cached
//! reconstruction receives the matching sparse-column spectral correction;
//! frames whose change count stays under the gate threshold skip the gaze
//! forward entirely and serve the last-good direction. This suite pins the
//! contracts the tentpole rests on:
//!
//! 1. **Refresh-frame bit-identity** — scheduled ROI-refresh frames run
//!    the dense path in both modes, so their outputs match the dense
//!    tracker to the last bit (and re-priming there resets any drift the
//!    clean-event deltas accumulated between refreshes).
//! 2. **Bounded steady-state divergence** — between refreshes the delta
//!    tracker accumulates *clean* (noise-free) column updates on top of
//!    the refresh frame's noisy capture, while the dense tracker re-draws
//!    sensor noise every frame. The reconstruction update itself is
//!    algebraically exact for the cached measurement, so the divergence is
//!    the noise-redraw difference pushed through the gaze net — a few
//!    degrees at most, reset to zero at every refresh.
//! 3. **Event-sensor economy** — the dense run solves once per frame; the
//!    delta run solves on refresh frames ONLY (`optics/recon_solves`),
//!    applies one incremental update per super-threshold frame
//!    (`optics/recon_delta_updates`), and skips everything else
//!    (`tracker/gaze_skipped`).
//! 4. **Motion-gate conformance under faults** — with `FaultPlan::heavy`
//!    active the gated pipeline still replays deterministically, the skip
//!    counter agrees with the per-frame `gaze_skipped` flags, and
//!    drop/delay/duplicate handling grades exactly as the recovery
//!    machinery dictates.
//!
//! The telemetry-pinned run lives in ONE test function: the registry is
//! global to the test binary, so the tracked runs must not interleave with
//! other frame-processing tests. The serve-layer legs run their own
//! registries and assert structure (forward counts), not global counters.

use eyecod::core::tracker::{EyeTracker, GazeBackend, TrackedFrame, TrackerConfig};
use eyecod::core::training::{train_tracker_models, TrackerModels, TrainingSetup};
use eyecod::eyedata::render::render_eye;
use eyecod::eyedata::EyeMotionGenerator;
use eyecod::faults::{FaultPlan, FrameQuality};
use eyecod::serve::{ServeConfig, ServeRegistry, SessionId, TickMode};
use proptest::prelude::*;
use std::sync::OnceLock;

const FRAMES: usize = 60;
const MOTION_SEED: u64 = 77;

/// Train once; every leg reuses the models read-only.
fn shared() -> &'static (TrackerConfig, TrackerModels) {
    static SHARED: OnceLock<(TrackerConfig, TrackerModels)> = OnceLock::new();
    SHARED.get_or_init(|| {
        let mut cfg = TrackerConfig::small();
        cfg.gaze_backend = GazeBackend::F32;
        cfg.delta = false;
        let models = train_tracker_models(&TrainingSetup::quick(), &cfg);
        (cfg, models)
    })
}

/// The fixed synthetic sequence both modes track (fixation runs plus
/// saccades: the default motion model produces both gated and delta
/// frames).
fn samples() -> &'static Vec<eyecod::eyedata::Sample> {
    static SAMPLES: OnceLock<Vec<eyecod::eyedata::Sample>> = OnceLock::new();
    SAMPLES.get_or_init(|| {
        let (cfg, _) = shared();
        let mut motion = EyeMotionGenerator::with_seed(MOTION_SEED);
        (0..FRAMES)
            .map(|i| render_eye(&motion.next_frame(), cfg.scene_size, 1000 + i as u64))
            .collect()
    })
}

fn run_tracker(delta: bool, threshold: usize, plan: FaultPlan) -> Vec<TrackedFrame> {
    let (cfg, models) = shared();
    let mut c = cfg.clone();
    c.delta = delta;
    c.delta_threshold = threshold;
    let mut tracker = EyeTracker::new(c, models.clone_models()).with_faults(plan);
    samples()
        .iter()
        .enumerate()
        .map(|(i, s)| tracker.process_frame(&s.image, 2000 + i as u64))
        .collect()
}

fn gaze_bits(f: &TrackedFrame) -> [u32; 3] {
    [f.gaze.x.to_bits(), f.gaze.y.to_bits(), f.gaze.z.to_bits()]
}

#[test]
fn delta_pipeline_matches_dense_on_refresh_frames_with_bounded_drift() {
    let (cfg, _) = shared();
    let refresh: Vec<usize> = (0..FRAMES).filter(|i| i % cfg.roi_period == 0).collect();

    #[cfg(feature = "telemetry")]
    eyecod::telemetry::set_enabled(true);

    #[cfg(feature = "telemetry")]
    eyecod::telemetry::global().reset();
    let dense = run_tracker(false, 16, FaultPlan::none());
    #[cfg(feature = "telemetry")]
    let dense_solves = eyecod::telemetry::global()
        .snapshot()
        .counter("optics/recon_solves")
        .unwrap_or(0);

    #[cfg(feature = "telemetry")]
    eyecod::telemetry::global().reset();
    let delta = run_tracker(true, 16, FaultPlan::none());
    #[cfg(feature = "telemetry")]
    let snap = eyecod::telemetry::global().snapshot();

    let skips = delta.iter().filter(|f| f.gaze_skipped).count();
    let sparse = delta
        .iter()
        .filter(|f| !f.gaze_skipped && !f.roi_refreshed)
        .count();
    assert!(
        skips > 0,
        "the fixed sequence must contain motion-gated frames"
    );
    assert!(
        sparse > 0,
        "the fixed sequence must contain sparse-update frames"
    );
    assert!(
        dense.iter().all(|f| !f.gaze_skipped),
        "dense mode must never gate"
    );

    // (1) refresh frames run the identical dense path in both modes
    for &i in &refresh {
        assert!(dense[i].roi_refreshed && delta[i].roi_refreshed);
        assert!(!delta[i].gaze_skipped, "refresh frames never gate");
        assert_eq!(
            gaze_bits(&dense[i]),
            gaze_bits(&delta[i]),
            "refresh frame {i}: delta output not bit-identical to dense"
        );
    }

    // (2) bounded steady-state divergence, reset at every refresh: the
    // per-frame divergence between the modes stays small everywhere and
    // is exactly zero on refresh frames (checked bitwise above)
    let mut div_sum = 0.0f32;
    let mut div_max = 0.0f32;
    for (d, e) in dense.iter().zip(&delta) {
        let div = d.gaze.angular_error_degrees(&e.gaze);
        div_sum += div;
        div_max = div_max.max(div);
    }
    let div_mean = div_sum / FRAMES as f32;
    assert!(
        div_mean < 8.0,
        "delta path diverged {div_mean:.2}° (mean) from dense — bound is 8°"
    );
    assert!(
        div_max < 25.0,
        "delta path diverged {div_max:.2}° (max) from dense — bound is 25°"
    );

    // both modes still track truth, and the delta run grades every clean
    // frame usable (gated frames are Ok: the gate verified stasis)
    let err = |trace: &[TrackedFrame]| {
        trace
            .iter()
            .zip(samples())
            .map(|(f, s)| f.gaze.angular_error_degrees(&s.gaze))
            .sum::<f32>()
            / FRAMES as f32
    };
    assert!(
        err(&dense) < 18.0,
        "dense lost tracking: {:.1}°",
        err(&dense)
    );
    assert!(
        err(&delta) < 18.0,
        "delta lost tracking: {:.1}°",
        err(&delta)
    );
    assert!(
        delta.iter().all(|f| f.quality == FrameQuality::Ok),
        "a clean delta run must grade every frame Ok"
    );

    // (3) event-sensor economy: solves on refresh frames only; one
    // incremental update per sparse frame; the skip counter agrees with
    // the per-frame flags
    #[cfg(feature = "telemetry")]
    {
        assert_eq!(dense_solves, FRAMES as u64, "dense solves once per frame");
        assert_eq!(
            snap.counter("optics/recon_solves").unwrap_or(0),
            refresh.len() as u64,
            "delta mode must solve on refresh frames ONLY"
        );
        assert_eq!(
            snap.counter("optics/recon_delta_updates").unwrap_or(0),
            sparse as u64,
            "one incremental update per sparse frame"
        );
        assert_eq!(
            snap.counter("tracker/gaze_skipped").unwrap_or(0),
            skips as u64,
            "skip counter must equal the motion-gated frame count"
        );
        assert_eq!(
            snap.counter("tracker/delta_frames").unwrap_or(0),
            sparse as u64,
            "delta-frame counter must equal the sparse frame count"
        );
        assert!(
            snap.counter("tracker/changed_px").unwrap_or(0) > 0,
            "change detection must account super-threshold pixels"
        );
    }
}

/// Motion-gate conformance under an aggressive fault plan: the gated
/// pipeline replays deterministically, skip flags stay consistent, and the
/// recovery machinery grades drop/delay/duplicate frames exactly as in
/// dense mode (those capture gates fire *before* the delta branch and are
/// keyed on the frame index alone).
#[test]
fn motion_gate_survives_heavy_faults_deterministically() {
    let plan = FaultPlan::heavy(0xEC0D);
    let a = run_tracker(true, 16, plan.clone());
    let b = run_tracker(true, 16, plan.clone());
    assert_eq!(a.len(), FRAMES);
    let digest = |t: &[TrackedFrame]| {
        t.iter()
            .map(|f| {
                format!(
                    "f{} {:?} skip={} gaze={:08x?} faults={:?}",
                    f.frame,
                    f.quality,
                    f.gaze_skipped,
                    gaze_bits(f),
                    f.faults
                )
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(digest(&a), digest(&b), "gated run must replay identically");
    let skips = a.iter().filter(|f| f.gaze_skipped).count();
    assert!(skips > 0, "heavy plan leaves fixation frames to gate");
    // skipped frames carry no fault events and never refresh the ROI
    for f in a.iter().filter(|f| f.gaze_skipped) {
        assert!(f.faults.is_clean(), "gated frame {} saw faults", f.frame);
        assert!(!f.roi_refreshed);
    }
    let injected: u32 = a.iter().map(|f| f.faults.injected).sum();
    let recovered: u32 = a.iter().map(|f| f.faults.recovered).sum();
    assert!(injected > 0, "heavy plan must inject");
    assert!(recovered > 0, "recovery must engage");
    // grading conformance with the recon path: the plan's harsh-preset
    // contract (≥90 % of frames Ok/Degraded over a 60-frame run) must
    // survive the motion gate — gating frames the recovery machinery
    // would have graded must not shift grades toward Lost
    let dense = run_tracker(false, 16, plan);
    let lost = |t: &[TrackedFrame]| t.iter().filter(|f| f.quality == FrameQuality::Lost).count();
    assert!(
        lost(&a) * 10 <= FRAMES,
        "delta mode under the heavy plan lost {}/{FRAMES} frames — the plan's contract allows 10 %",
        lost(&a)
    );
    assert!(
        lost(&a) <= lost(&dense),
        "the motion gate must not add Lost frames over dense mode ({} vs {})",
        lost(&a),
        lost(&dense)
    );
}

/// One comparable line per completed frame.
fn digest(id: SessionId, f: &TrackedFrame) -> String {
    format!(
        "{}:{} f{} gaze={:08x},{:08x},{:08x} q={:?} skip={} refreshed={}",
        id.index(),
        id.generation(),
        f.frame,
        f.gaze.x.to_bits(),
        f.gaze.y.to_bits(),
        f.gaze.z.to_bits(),
        f.quality,
        f.gaze_skipped,
        f.roi_refreshed,
    )
}

/// Drives a mixed-backend delta fleet through one fixed schedule and
/// returns every completed frame's digest plus the per-tick forward
/// counts.
fn run_fleet(mode: TickMode, threads: usize, ragged: u64) -> (Vec<String>, Vec<usize>) {
    let (cfg, models) = shared();
    let mut tracker_cfg = cfg.clone();
    tracker_cfg.delta = true;
    tracker_cfg.delta_threshold = 16;
    let mut sc = ServeConfig::new(tracker_cfg);
    sc.mode = mode;
    sc.threads = Some(threads);
    let mut reg = ServeRegistry::new(sc, models.clone_models()).with_faults(FaultPlan::none());
    let backends = [
        GazeBackend::F32,
        GazeBackend::Int8,
        GazeBackend::Latent,
        GazeBackend::F32,
    ];
    let ids: Vec<SessionId> = backends
        .iter()
        .map(|b| reg.create_with_backend(*b).unwrap())
        .collect();
    let mut out = Vec::new();
    let mut forwards = Vec::new();
    for step in 0..24u64 {
        for (s, id) in ids.iter().enumerate() {
            // a ragged schedule: not every session gets a frame every tick
            if (step + s as u64) % 7 != ragged {
                reg.feed(*id, &samples()[step as usize % FRAMES].image, step)
                    .unwrap();
            }
        }
        let (report, trace) = reg.tick_traced();
        forwards.push(report.f32_forwards + report.int8_forwards + report.latent_forwards);
        out.extend(trace.iter().map(|(id, f)| digest(*id, f)));
    }
    (out, forwards)
}

/// Motion-gated sessions never enter a gaze batch: in every tick mode, the
/// per-tick forward counts plus the gated completions add up to the staged
/// frames, and a fully static fleet stops forwarding entirely between
/// refreshes.
#[test]
fn gated_sessions_stay_out_of_gaze_batches_in_every_mode() {
    let (cfg, models) = shared();
    let scene = render_eye(
        &eyecod::eyedata::EyeParams::centered(cfg.scene_size),
        cfg.scene_size,
        5,
    )
    .image;
    for mode in [TickMode::Sequential, TickMode::Batched, TickMode::Scheduled] {
        let mut tracker_cfg = cfg.clone();
        tracker_cfg.delta = true;
        tracker_cfg.delta_threshold = 16;
        let mut sc = ServeConfig::new(tracker_cfg);
        sc.mode = mode;
        sc.threads = Some(0);
        let mut reg = ServeRegistry::new(sc, models.clone_models()).with_faults(FaultPlan::none());
        let ids: Vec<SessionId> = (0..3).map(|_| reg.create().unwrap()).collect();
        for step in 0..12u64 {
            for id in &ids {
                reg.feed(*id, &scene, step).unwrap();
            }
            let (report, trace) = reg.tick_traced();
            assert_eq!(report.staged, ids.len(), "{mode:?} step {step}");
            let skipped = trace.iter().filter(|(_, f)| f.gaze_skipped).count();
            let due = step % cfg.roi_period as u64 == 0;
            if due {
                // refresh ticks run the dense path for every session
                assert_eq!(skipped, 0, "{mode:?} step {step}: refresh ticks never gate");
                assert_eq!(
                    report.f32_forwards + report.int8_forwards + report.latent_forwards,
                    ids.len(),
                    "{mode:?} step {step}"
                );
            } else {
                // a static scene gates every session: zero forwards, and
                // every frame still completes with a served gaze
                assert_eq!(skipped, ids.len(), "{mode:?} step {step}: all gated");
                assert_eq!(
                    report.f32_forwards + report.int8_forwards + report.latent_forwards,
                    0,
                    "{mode:?} step {step}: gated sessions must not batch"
                );
            }
            for (_, f) in &trace {
                assert_eq!(f.quality, FrameQuality::Ok, "{mode:?} step {step}");
            }
        }
        for id in &ids {
            let snap = reg.snapshot(*id).unwrap();
            // 12 steps with refreshes at 0 and 10: 10 gated frames each
            assert_eq!(snap.stats.skipped_frames, 10, "{mode:?}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Worker-count invariance for delta fleets: a scheduled-mode registry
    /// on an N-worker pool produces frame-for-frame identical output to a
    /// sequential one for the same ragged schedule — the motion gate and
    /// the sparse updates key on per-session state alone, so stage
    /// interleaving across workers must be invisible.
    #[test]
    fn delta_fleet_output_is_worker_count_invariant(
        threads in 1usize..4,
        ragged in 0u64..7,
    ) {
        let (seq, seq_fwd) = run_fleet(TickMode::Scheduled, 0, ragged);
        let (par, par_fwd) = run_fleet(TickMode::Scheduled, threads, ragged);
        prop_assert!(!seq.is_empty());
        prop_assert_eq!(seq.len(), par.len(), "{} workers completed a different frame count", threads);
        for (a, b) in seq.iter().zip(&par) {
            prop_assert_eq!(a, b, "{} workers diverged", threads);
        }
        prop_assert_eq!(seq_fwd, par_fwd, "forward counts must not depend on workers");
    }
}
